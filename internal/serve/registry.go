package serve

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/exp"
	"repro/internal/graph"
	"repro/internal/steady"
)

// platformEntry is one *version snapshot* of a registered platform.
// Snapshots are immutable once published — a mutation (re-upload or
// PATCH) builds a new graph and publishes a new entry under the same
// ID — so every shard may read the graph concurrently without locking:
// nothing in the plan path mutates a published snapshot (the
// heuristics clone before touching the activity mask), and in-flight
// requests keep computing against the snapshot they resolved, whatever
// happens to the platform meanwhile.
type platformEntry struct {
	id         string
	g          *graph.Graph
	fp         uint64
	sourceName string // default source for plan requests, may be ""
	nodes      int
	edges      int
	gen        int   // upload generation of this ID, starting at 1
	version    int64 // monotonic per-platform version, bumped by uploads AND patches
}

func (e *platformEntry) fingerprint() string { return fmt.Sprintf("%016x", e.fp) }

// ChangeRecord is one entry of a platform's mutation log, surfaced by
// GET /v1/platforms/{id}/log (newest last).
type ChangeRecord struct {
	Version int64  `json:"version"`
	Kind    string `json:"kind"` // "upload" or "patch"
	// Ops echoes the applied PATCH delta batch (empty for uploads).
	Ops         []PatchOp `json:"ops,omitempty"`
	Fingerprint string    `json:"fingerprint"`
	Nodes       int       `json:"nodes"`
	Edges       int       `json:"edges"`
}

// platform is the mutable holder behind one ID: the current snapshot
// (atomic, so readers never block on a mutation in progress), the
// mutation log and the recent-snapshot history that lets the
// determinism tests cold-solve any version a response was stamped
// with.
type platform struct {
	mu  sync.Mutex // serialises mutations of this ID
	cur atomic.Pointer[platformEntry]
	// log is the mutation log, newest last, capped at the registry's
	// logCap.
	log []ChangeRecord
	// history holds the most recent snapshots (including cur), newest
	// last, capped at the registry's histCap.
	history []*platformEntry
}

// registry is the platform store: upload once, reference by ID, mutate
// with PATCH deltas.
type registry struct {
	mu      sync.RWMutex
	m       map[string]*platform
	histCap int
	logCap  int
}

func newRegistry(histCap, logCap int) *registry {
	return &registry{m: make(map[string]*platform), histCap: histCap, logCap: logCap}
}

// record publishes e as p's current snapshot and appends the log
// record. Caller holds p.mu.
func (r *registry) record(p *platform, e *platformEntry, kind string, ops []PatchOp) {
	p.cur.Store(e)
	p.history = append(p.history, e)
	if n := len(p.history) - r.histCap; n > 0 {
		p.history = append(p.history[:0], p.history[n:]...)
	}
	p.log = append(p.log, ChangeRecord{
		Version:     e.version,
		Kind:        kind,
		Ops:         ops,
		Fingerprint: e.fingerprint(),
		Nodes:       e.nodes,
		Edges:       e.edges,
	})
	if n := len(p.log) - r.logCap; n > 0 {
		p.log = append(p.log[:0], p.log[n:]...)
	}
}

// put registers (or replaces) a platform. An empty id derives a
// content-addressed default from the graph fingerprint AND the default
// source: "pf-<fingerprint>" with no source, "pf-<mixed>" otherwise.
// The source must be part of the derived identity — it changes what
// plan requests against the ID compute — or re-uploading one graph
// with a different default source would silently replace the prior
// entry's source while the fingerprint-keyed invalidation sweep (which
// only fires when fp changes) drops nothing. It returns the new entry
// and the entry it replaced (nil for a first upload); a replacement
// continues the platform's version sequence.
func (r *registry) put(id string, g *graph.Graph, sourceName string) (*platformEntry, *platformEntry) {
	fp := steady.Fingerprint(g)
	if id == "" {
		id = deriveID(fp, sourceName)
	}
	e := &platformEntry{
		id:         id,
		g:          g,
		fp:         fp,
		sourceName: sourceName,
		nodes:      g.NumActive(),
		edges:      len(g.ActiveEdges()),
		gen:        1,
		version:    1,
	}
	r.mu.Lock()
	p := r.m[id]
	if p == nil {
		p = &platform{}
		r.m[id] = p
	}
	r.mu.Unlock()

	p.mu.Lock()
	defer p.mu.Unlock()
	old := p.cur.Load()
	if old != nil {
		e.gen = old.gen + 1
		e.version = old.version + 1
	}
	r.record(p, e, "upload", nil)
	return e, old
}

// patch mutates a platform copy-on-write: resolve is handed a private
// clone of the current snapshot's graph and must apply the requested
// delta to it (returning the resolved ops for the log). On success the
// clone is published as the next version. The platform's mutation lock
// is held across resolve, so concurrent PATCHes serialise and each
// sees its predecessor's effects.
func (r *registry) patch(id string, resolve func(g *graph.Graph) ([]PatchOp, error)) (old, cur *platformEntry, err error) {
	r.mu.RLock()
	p := r.m[id]
	r.mu.RUnlock()
	if p == nil {
		return nil, nil, notFound("unknown platform id %q", id)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	old = p.cur.Load()
	if old == nil {
		// The holder was created by a concurrent upload that has not
		// published its first snapshot yet.
		return nil, nil, notFound("unknown platform id %q", id)
	}
	clone := old.g.Clone()
	ops, err := resolve(clone)
	if err != nil {
		return nil, nil, err
	}
	cur = &platformEntry{
		id:         old.id,
		g:          clone,
		fp:         steady.Fingerprint(clone),
		sourceName: old.sourceName,
		nodes:      clone.NumActive(),
		edges:      len(clone.ActiveEdges()),
		gen:        old.gen,
		version:    old.version + 1,
	}
	r.record(p, cur, "patch", ops)
	return old, cur, nil
}

// deriveID builds the content-addressed platform ID. A declared
// default source is folded into the hex digits by FNV-mixing its name
// into the fingerprint, so the bare-graph ID keeps its historical
// pf-<fingerprint> form.
func deriveID(fp uint64, sourceName string) string {
	if sourceName != "" {
		h := fnv.New64a()
		h.Write([]byte(sourceName))
		fp = exp.Mix64(fp ^ h.Sum64())
	}
	return fmt.Sprintf("pf-%016x", fp)
}

func (r *registry) get(id string) (*platformEntry, bool) {
	r.mu.RLock()
	p := r.m[id]
	r.mu.RUnlock()
	if p == nil {
		return nil, false
	}
	return p.cur.Load(), true
}

// at returns the retained snapshot of one platform version, if the
// history ring still holds it.
func (r *registry) at(id string, version int64) (*platformEntry, bool) {
	r.mu.RLock()
	p := r.m[id]
	r.mu.RUnlock()
	if p == nil {
		return nil, false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := len(p.history) - 1; i >= 0; i-- {
		if p.history[i].version == version {
			return p.history[i], true
		}
	}
	return nil, false
}

// changes returns a copy of one platform's mutation log, oldest first.
func (r *registry) changes(id string) ([]ChangeRecord, bool) {
	r.mu.RLock()
	p := r.m[id]
	r.mu.RUnlock()
	if p == nil {
		return nil, false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]ChangeRecord(nil), p.log...), true
}

// list returns the current snapshots sorted by ID.
func (r *registry) list() []*platformEntry {
	r.mu.RLock()
	out := make([]*platformEntry, 0, len(r.m))
	for _, p := range r.m {
		out = append(out, p.cur.Load())
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

func (r *registry) len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.m)
}

// validateID keeps platform IDs URL-path-safe.
func validateID(id string) error {
	if len(id) > 128 {
		return fmt.Errorf("platform id longer than 128 bytes")
	}
	if strings.ContainsAny(id, "/?#%\x00 \t\n") {
		return fmt.Errorf("platform id %q contains reserved characters", id)
	}
	return nil
}
