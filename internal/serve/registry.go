package serve

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"

	"repro/internal/exp"
	"repro/internal/graph"
	"repro/internal/steady"
)

// platformEntry is one registered platform. Entries are immutable once
// published (a re-upload publishes a new entry under the same ID), so
// every shard may read the graph concurrently without locking: nothing
// in the plan path mutates a platform — the heuristics clone before
// touching the activity mask.
type platformEntry struct {
	id         string
	g          *graph.Graph
	fp         uint64
	sourceName string // default source for plan requests, may be ""
	nodes      int
	edges      int
	gen        int // upload generation of this ID, starting at 1
}

func (e *platformEntry) fingerprint() string { return fmt.Sprintf("%016x", e.fp) }

// registry is the platform store: upload once, reference by ID.
type registry struct {
	mu sync.RWMutex
	m  map[string]*platformEntry
}

func newRegistry() *registry {
	return &registry{m: make(map[string]*platformEntry)}
}

// put registers (or replaces) a platform. An empty id derives a
// content-addressed default from the graph fingerprint AND the default
// source: "pf-<fingerprint>" with no source, "pf-<mixed>" otherwise.
// The source must be part of the derived identity — it changes what
// plan requests against the ID compute — or re-uploading one graph
// with a different default source would silently replace the prior
// entry's source while the fingerprint-keyed invalidation sweep (which
// only fires when fp changes) drops nothing. It returns the new entry
// and the entry it replaced (nil for a first upload).
func (r *registry) put(id string, g *graph.Graph, sourceName string) (*platformEntry, *platformEntry) {
	fp := steady.Fingerprint(g)
	if id == "" {
		id = deriveID(fp, sourceName)
	}
	e := &platformEntry{
		id:         id,
		g:          g,
		fp:         fp,
		sourceName: sourceName,
		nodes:      g.NumActive(),
		edges:      len(g.ActiveEdges()),
		gen:        1,
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	old := r.m[id]
	if old != nil {
		e.gen = old.gen + 1
	}
	r.m[id] = e
	return e, old
}

// deriveID builds the content-addressed platform ID. A declared
// default source is folded into the hex digits by FNV-mixing its name
// into the fingerprint, so the bare-graph ID keeps its historical
// pf-<fingerprint> form.
func deriveID(fp uint64, sourceName string) string {
	if sourceName != "" {
		h := fnv.New64a()
		h.Write([]byte(sourceName))
		fp = exp.Mix64(fp ^ h.Sum64())
	}
	return fmt.Sprintf("pf-%016x", fp)
}

func (r *registry) get(id string) (*platformEntry, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.m[id]
	return e, ok
}

// list returns the registered entries sorted by ID.
func (r *registry) list() []*platformEntry {
	r.mu.RLock()
	out := make([]*platformEntry, 0, len(r.m))
	for _, e := range r.m {
		out = append(out, e)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

func (r *registry) len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.m)
}

// validateID keeps platform IDs URL-path-safe.
func validateID(id string) error {
	if len(id) > 128 {
		return fmt.Errorf("platform id longer than 128 bytes")
	}
	if strings.ContainsAny(id, "/?#%\x00 \t\n") {
		return fmt.Errorf("platform id %q contains reserved characters", id)
	}
	return nil
}
