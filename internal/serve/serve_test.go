package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/heur"
	"repro/internal/steady"
)

// diamondText is a small platform where the bounds are cheap: S feeds
// two relays which both feed both targets, plus slow direct edges.
const diamondText = `
node S
edge S r1 1
edge S r2 1
edge r1 t1 1
edge r1 t2 1
edge r2 t1 1
edge r2 t2 1
edge S t1 6
edge S t2 6
`

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	return New(cfg)
}

func doJSON(t *testing.T, s *Server, method, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	var rd *bytes.Reader
	if body == nil {
		rd = bytes.NewReader(nil)
	} else {
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(data)
	}
	req := httptest.NewRequest(method, path, rd)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	return w
}

func decodeJSON[T any](t *testing.T, w *httptest.ResponseRecorder) T {
	t.Helper()
	var v T
	if err := json.Unmarshal(w.Body.Bytes(), &v); err != nil {
		t.Fatalf("bad response body %q: %v", w.Body.String(), err)
	}
	return v
}

func TestUploadListGet(t *testing.T) {
	s := newTestServer(t, Config{Shards: 2})
	w := doJSON(t, s, http.MethodPost, "/v1/platforms", UploadRequest{ID: "diamond", Platform: diamondText, Source: "S"})
	if w.Code != http.StatusCreated {
		t.Fatalf("upload: %d %s", w.Code, w.Body.String())
	}
	up := decodeJSON[UploadResponse](t, w)
	if up.ID != "diamond" || up.Nodes != 5 || up.Edges != 8 || up.Generation != 1 || up.Source != "S" {
		t.Errorf("unexpected upload response: %+v", up)
	}

	w = doJSON(t, s, http.MethodGet, "/v1/platforms", nil)
	list := decodeJSON[[]PlatformInfo](t, w)
	if len(list) != 1 || list[0].ID != "diamond" || list[0].Fingerprint != up.Fingerprint {
		t.Errorf("unexpected list: %+v", list)
	}

	w = doJSON(t, s, http.MethodGet, "/v1/platforms/diamond", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("get: %d", w.Code)
	}
	w = doJSON(t, s, http.MethodGet, "/v1/platforms/nope", nil)
	if w.Code != http.StatusNotFound {
		t.Errorf("missing platform: got %d, want 404", w.Code)
	}

	// Content-addressed ID when the client names none.
	w = doJSON(t, s, http.MethodPost, "/v1/platforms", UploadRequest{Platform: diamondText})
	up2 := decodeJSON[UploadResponse](t, w)
	if up2.ID != "pf-"+up.Fingerprint {
		t.Errorf("derived id %q, want pf-%s", up2.ID, up.Fingerprint)
	}
}

func TestUploadRejectsBadInput(t *testing.T) {
	s := newTestServer(t, Config{Shards: 1})
	cases := []UploadRequest{
		{Platform: ""},                                        // empty
		{Platform: "frob S a 1"},                              // unknown directive
		{Platform: diamondText, Source: "nope"},               // unknown default source
		{ID: "a/b", Platform: diamondText},                    // reserved char in ID
		{ID: strings.Repeat("x", 200), Platform: diamondText}, // too long
	}
	for i, req := range cases {
		if w := doJSON(t, s, http.MethodPost, "/v1/platforms", req); w.Code != http.StatusBadRequest {
			t.Errorf("case %d: got %d, want 400 (%s)", i, w.Code, w.Body.String())
		}
	}
}

func TestPlanValidation(t *testing.T) {
	s := newTestServer(t, Config{Shards: 1})
	doJSON(t, s, http.MethodPost, "/v1/platforms", UploadRequest{ID: "d", Platform: diamondText, Source: "S"})
	cases := []struct {
		req  PlanRequest
		want int
	}{
		{PlanRequest{PlanSpec: PlanSpec{PlatformID: "missing", Targets: []string{"t1"}}}, http.StatusNotFound},
		{PlanRequest{PlanSpec: PlanSpec{Targets: []string{"t1"}}}, http.StatusBadRequest},                                            // no platform
		{PlanRequest{PlanSpec: PlanSpec{PlatformID: "d", Platform: diamondText, Targets: []string{"t1"}}}, http.StatusBadRequest},    // both
		{PlanRequest{PlanSpec: PlanSpec{PlatformID: "d"}}, http.StatusBadRequest},                                                    // no targets
		{PlanRequest{PlanSpec: PlanSpec{PlatformID: "d", Targets: []string{"zz"}}}, http.StatusBadRequest},                           // unknown target
		{PlanRequest{PlanSpec: PlanSpec{PlatformID: "d", Source: "zz", Targets: []string{"t1"}}}, http.StatusBadRequest},             // unknown source
		{PlanRequest{PlanSpec: PlanSpec{PlatformID: "d", Targets: []string{"t1", "t1"}}}, http.StatusBadRequest},                     // duplicate target
		{PlanRequest{PlanSpec: PlanSpec{PlatformID: "d", Targets: []string{"S"}}}, http.StatusBadRequest},                            // source as target
		{PlanRequest{PlanSpec: PlanSpec{PlatformID: "d", Targets: []string{"t1"}, Bounds: []string{"nope"}}}, http.StatusBadRequest}, // unknown bound
		{PlanRequest{PlanSpec: PlanSpec{PlatformID: "d", Targets: []string{"t1"}, Heuristics: []string{"zz"}}}, http.StatusBadRequest},
	}
	for i, c := range cases {
		if w := doJSON(t, s, http.MethodPost, "/v1/plan", c.req); w.Code != c.want {
			t.Errorf("case %d: got %d, want %d (%s)", i, w.Code, c.want, w.Body.String())
		}
	}
}

// TestPlanMatchesLibrary anchors the server path to the library: the
// served bounds must be bit-identical to direct steady calls and the
// served heuristics to a shared-evaluator heur sequence.
func TestPlanMatchesLibrary(t *testing.T) {
	s := newTestServer(t, Config{Shards: 3})
	doJSON(t, s, http.MethodPost, "/v1/platforms", UploadRequest{ID: "d", Platform: diamondText, Source: "S"})
	w := doJSON(t, s, http.MethodPost, "/v1/plan", PlanRequest{PlanSpec: PlanSpec{PlatformID: "d", Targets: []string{"t1", "t2"}}})
	if w.Code != http.StatusOK {
		t.Fatalf("plan: %d %s", w.Code, w.Body.String())
	}
	resp := decodeJSON[PlanResponse](t, w)

	g, err := graph.Decode(strings.NewReader(diamondText))
	if err != nil {
		t.Fatal(err)
	}
	source, _ := g.NodeByName("S")
	t1, _ := g.NodeByName("t1")
	t2, _ := g.NodeByName("t2")
	p, err := steady.NewProblem(g, source, []graph.NodeID{t1, t2})
	if err != nil {
		t.Fatal(err)
	}
	ev := steady.NewEvaluator()
	wantBounds := map[string]*steady.Bound{}
	for _, name := range boundOrder {
		var b *steady.Bound
		switch name {
		case BoundScatter:
			b, err = ev.ScatterUB(p)
		case BoundLB:
			b, err = ev.MulticastLB(p)
		case BoundBroadcast:
			b, err = ev.BroadcastEB(g, source)
		}
		if err != nil {
			t.Fatal(err)
		}
		wantBounds[name] = b
	}
	if len(resp.Bounds) != 3 {
		t.Fatalf("got %d bounds, want 3", len(resp.Bounds))
	}
	for _, br := range resp.Bounds {
		want := wantBounds[br.Name]
		if math.Float64bits(br.Period) != math.Float64bits(want.Period) {
			t.Errorf("%s: served period %v, library %v", br.Name, br.Period, want.Period)
		}
	}
	if len(resp.Plans) != 4 {
		t.Fatalf("got %d plans, want 4", len(resp.Plans))
	}
	for i, h := range heur.AllWith(ev) {
		res, err := h.Run(p)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Plans[i].Heuristic != h.Name {
			t.Fatalf("plan %d is %q, want %q", i, resp.Plans[i].Heuristic, h.Name)
		}
		if math.Float64bits(resp.Plans[i].Period) != math.Float64bits(res.Period) {
			t.Errorf("%s: served period %v, library %v", h.Name, resp.Plans[i].Period, res.Period)
		}
	}
}

func TestPlanCacheAndHeaders(t *testing.T) {
	s := newTestServer(t, Config{Shards: 2})
	doJSON(t, s, http.MethodPost, "/v1/platforms", UploadRequest{ID: "d", Platform: diamondText, Source: "S"})
	req := PlanRequest{PlanSpec: PlanSpec{PlatformID: "d", Targets: []string{"t1"}, Heuristics: []string{"MCPH"}}}

	w1 := doJSON(t, s, http.MethodPost, "/v1/plan", req)
	if w1.Code != http.StatusOK {
		t.Fatalf("plan: %d %s", w1.Code, w1.Body.String())
	}
	if got := w1.Header().Get(HeaderCache); got != "miss" {
		t.Errorf("first request cache header %q, want miss", got)
	}
	if w1.Header().Get(HeaderShard) == "" {
		t.Error("first request did not report its shard")
	}
	w2 := doJSON(t, s, http.MethodPost, "/v1/plan", req)
	if got := w2.Header().Get(HeaderCache); got != "hit" {
		t.Errorf("second request cache header %q, want hit", got)
	}
	if !bytes.Equal(w1.Body.Bytes(), w2.Body.Bytes()) {
		t.Error("cached response body differs from computed body")
	}

	// NoCache recomputes but still agrees byte-for-byte.
	req.NoCache = true
	w3 := doJSON(t, s, http.MethodPost, "/v1/plan", req)
	if got := w3.Header().Get(HeaderCache); got != "miss" {
		t.Errorf("no_cache request cache header %q, want miss", got)
	}
	if !bytes.Equal(w1.Body.Bytes(), w3.Body.Bytes()) {
		t.Error("no_cache response body differs")
	}
}

func TestReuploadInvalidatesCache(t *testing.T) {
	s := newTestServer(t, Config{Shards: 1})
	doJSON(t, s, http.MethodPost, "/v1/platforms", UploadRequest{ID: "d", Platform: diamondText, Source: "S"})
	req := PlanRequest{PlanSpec: PlanSpec{PlatformID: "d", Targets: []string{"t1"}, Heuristics: []string{}}}
	w1 := doJSON(t, s, http.MethodPost, "/v1/plan", req)
	resp1 := decodeJSON[PlanResponse](t, w1)

	// Same content again: no invalidation, generation bumps.
	w := doJSON(t, s, http.MethodPost, "/v1/platforms", UploadRequest{ID: "d", Platform: diamondText, Source: "S"})
	if w.Code != http.StatusOK {
		t.Fatalf("re-upload: %d", w.Code)
	}
	up := decodeJSON[UploadResponse](t, w)
	if !up.Replaced || up.Generation != 2 || up.Invalidated != 0 {
		t.Errorf("same-content re-upload: %+v", up)
	}
	if got := doJSON(t, s, http.MethodPost, "/v1/plan", req); got.Header().Get(HeaderCache) != "hit" {
		t.Error("same-content re-upload evicted the cached plan")
	}

	// New content: the old plan must be dropped and the new answer must
	// reflect the new platform.
	slower := strings.ReplaceAll(diamondText, "edge S r1 1", "edge S r1 3")
	w = doJSON(t, s, http.MethodPost, "/v1/platforms", UploadRequest{ID: "d", Platform: slower, Source: "S"})
	up = decodeJSON[UploadResponse](t, w)
	if up.Invalidated == 0 {
		t.Errorf("content change invalidated no cached plans: %+v", up)
	}
	w2 := doJSON(t, s, http.MethodPost, "/v1/plan", req)
	if w2.Header().Get(HeaderCache) != "miss" {
		t.Error("plan after content change was served from the cache")
	}
	resp2 := decodeJSON[PlanResponse](t, w2)
	if resp1.Fingerprint == resp2.Fingerprint {
		t.Error("fingerprint did not change with the platform content")
	}
}

func TestFlightGroupCoalesces(t *testing.T) {
	fg := newFlightGroup()
	key := planKey{fp: 1, targets: "2"}
	gate := make(chan struct{})
	leaderIn := make(chan struct{})
	want := &PlanResponse{Fingerprint: "x"}

	var wg sync.WaitGroup
	results := make([]*PlanResponse, 3)
	shared := make([]bool, 3)
	wg.Add(1)
	go func() {
		defer wg.Done()
		results[0], _, shared[0] = fg.do(key, func() (*PlanResponse, error) {
			close(leaderIn)
			<-gate
			return want, nil
		})
	}()
	<-leaderIn // leader is inside fn; followers must coalesce
	for i := 1; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i], _, shared[i] = fg.do(key, func() (*PlanResponse, error) {
				t.Error("follower executed the computation")
				return nil, nil
			})
		}()
	}
	// Wait until both followers are registered, then release the leader.
	for {
		fg.mu.Lock()
		n := fg.coalesced
		fg.mu.Unlock()
		if n == 2 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()
	for i := range results {
		if results[i] != want {
			t.Errorf("caller %d got %+v", i, results[i])
		}
	}
	if shared[0] || !shared[1] || !shared[2] {
		t.Errorf("shared flags = %v, want [false true true]", shared)
	}
	if got := fg.coalescedCount(); got != 2 {
		t.Errorf("coalesced count %d, want 2", got)
	}
}

func TestPlanCacheLRU(t *testing.T) {
	c := newPlanCache(2)
	k := func(i int) planKey { return planKey{fp: uint64(i)} }
	r := func(i int) *PlanResponse { return &PlanResponse{Fingerprint: fmt.Sprint(i)} }
	c.put(k(1), r(1))
	c.put(k(2), r(2))
	if _, ok := c.get(k(1)); !ok {
		t.Fatal("k1 missing")
	}
	c.put(k(3), r(3)) // evicts k2 (k1 was refreshed)
	if _, ok := c.get(k(2)); ok {
		t.Error("k2 survived past capacity")
	}
	if _, ok := c.get(k(1)); !ok {
		t.Error("LRU evicted the recently used entry")
	}
	if n := c.dropIf(func(key planKey) bool { return key.fp == 1 }); n != 1 {
		t.Errorf("dropIf removed %d, want 1", n)
	}
	st := c.stats()
	if st.Size != 1 || st.Dropped != 1 {
		t.Errorf("stats %+v", st)
	}
	// Disabled cache accepts nothing.
	d := newPlanCache(0)
	d.put(k(1), r(1))
	if _, ok := d.get(k(1)); ok {
		t.Error("disabled cache returned a hit")
	}
}

func TestRouteHashSpreads(t *testing.T) {
	pool := newShardPool(4)
	seen := map[int]bool{}
	for i := 0; i < 64; i++ {
		key := planKey{fp: 12345, source: 0, targets: fmt.Sprintf("%d,%d", i, i+1)}
		idx := int(key.routeHash() % uint64(len(pool.shards)))
		seen[idx] = true
	}
	if len(seen) < 3 {
		t.Errorf("64 distinct problems landed on only %d of 4 shards", len(seen))
	}
	// Identical keys always route identically.
	k := planKey{fp: 9, source: 2, targets: "4,5"}
	if k.routeHash() != k.routeHash() {
		t.Error("routeHash is not deterministic")
	}
}

func TestStatsEndpoint(t *testing.T) {
	s := newTestServer(t, Config{Shards: 2})
	doJSON(t, s, http.MethodPost, "/v1/platforms", UploadRequest{ID: "d", Platform: diamondText, Source: "S"})
	doJSON(t, s, http.MethodPost, "/v1/plan", PlanRequest{PlanSpec: PlanSpec{PlatformID: "d", Targets: []string{"t1", "t2"}, Heuristics: []string{}}})
	doJSON(t, s, http.MethodPost, "/v1/plan", PlanRequest{PlanSpec: PlanSpec{PlatformID: "d", Targets: []string{"t1", "t2"}, Heuristics: []string{}}})

	w := doJSON(t, s, http.MethodGet, "/v1/stats", nil)
	st := decodeJSON[StatsResponse](t, w)
	if st.Platforms != 1 || st.Shards != 2 || len(st.ShardServed) != 2 {
		t.Errorf("stats shape: %+v", st)
	}
	if st.Solver.Solves == 0 || st.Solver.Evaluations == 0 {
		t.Errorf("no solver activity recorded: %+v", st.Solver)
	}
	if st.PlanCache.Hits != 1 || st.PlanCache.Misses != 1 {
		t.Errorf("cache counters: %+v", st.PlanCache)
	}
	ep, ok := st.Endpoints["POST /v1/plan"]
	if !ok || ep.Count != 2 {
		t.Errorf("plan endpoint metrics: %+v", st.Endpoints)
	}
	if _, ok := st.Endpoints["POST /v1/platforms"]; !ok {
		t.Error("upload endpoint metrics missing")
	}
}

func TestHealthz(t *testing.T) {
	s := newTestServer(t, Config{Shards: 1})
	w := doJSON(t, s, http.MethodGet, "/healthz", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("healthz: %d", w.Code)
	}
}

// TestInlinePlatformPlan covers one-shot requests that inline the
// platform instead of registering it.
func TestInlinePlatformPlan(t *testing.T) {
	s := newTestServer(t, Config{Shards: 1})
	w := doJSON(t, s, http.MethodPost, "/v1/plan", PlanRequest{PlanSpec: PlanSpec{Platform: diamondText, Source: "S", Targets: []string{"t1"}, Bounds: []string{"scatter"}, Heuristics: []string{"mcph"}}})
	if w.Code != http.StatusOK {
		t.Fatalf("inline plan: %d %s", w.Code, w.Body.String())
	}
	resp := decodeJSON[PlanResponse](t, w)
	if resp.PlatformID != "" {
		t.Errorf("inline plan has platform id %q", resp.PlatformID)
	}
	if len(resp.Bounds) != 1 || resp.Bounds[0].Name != "scatter" {
		t.Errorf("bounds: %+v", resp.Bounds)
	}
	if len(resp.Plans) != 1 || resp.Plans[0].Heuristic != "MCPH" || len(resp.Plans[0].Tree) == 0 {
		t.Errorf("plans: %+v", resp.Plans)
	}
}

// TestFlightGroupSurvivesPanic pins the cleanup contract: a panicking
// computation must deregister its key and wake followers, not wedge
// the key until restart.
func TestFlightGroupSurvivesPanic(t *testing.T) {
	fg := newFlightGroup()
	key := planKey{fp: 7}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panic did not propagate")
			}
		}()
		fg.do(key, func() (*PlanResponse, error) { panic("boom") })
	}()
	// The key must be free again: a later caller computes normally.
	want := &PlanResponse{Fingerprint: "ok"}
	got, err, shared := fg.do(key, func() (*PlanResponse, error) { return want, nil })
	if err != nil || shared || got != want {
		t.Errorf("post-panic call: got %v shared=%v err=%v", got, shared, err)
	}
}

// TestFlightGroupCanceledLeaderRetries is the regression test for the
// error-sharing bug: a leader whose own request is canceled must not
// hand context.Canceled to its coalesced followers. Followers re-run
// the computation (one becomes the next leader) and all of them get
// the real response; the coalesced counter nets out to the followers
// actually served from another caller's flight.
func TestFlightGroupCanceledLeaderRetries(t *testing.T) {
	fg := newFlightGroup()
	key := planKey{fp: 3, targets: "1"}
	gate := make(chan struct{})
	leaderIn := make(chan struct{})
	want := &PlanResponse{Fingerprint: "real"}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, err, shared := fg.do(key, func() (*PlanResponse, error) {
			close(leaderIn)
			<-gate
			return nil, context.Canceled // the leader's client hung up
		})
		if shared || !errors.Is(err, context.Canceled) {
			t.Errorf("leader got shared=%v err=%v, want its own cancellation", shared, err)
		}
	}()
	<-leaderIn

	const followers = 4
	results := make([]*PlanResponse, followers)
	errs := make([]error, followers)
	var reran atomic.Int64
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i], _ = fg.do(key, func() (*PlanResponse, error) {
				reran.Add(1)
				return want, nil
			})
		}(i)
	}
	// Wait for every follower to coalesce behind the doomed leader,
	// then cancel it.
	for {
		fg.mu.Lock()
		n := fg.coalesced
		fg.mu.Unlock()
		if n == followers {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()

	for i := 0; i < followers; i++ {
		if errs[i] != nil {
			t.Errorf("follower %d inherited error %v", i, errs[i])
		}
		if results[i] != want {
			t.Errorf("follower %d got %+v, want the recomputed response", i, results[i])
		}
	}
	if n := reran.Load(); n < 1 {
		t.Error("no follower re-ran the computation")
	}
	// Accounting: every follower served from a retried flight was
	// rolled back first, so hits+coalesced+computed still adds up:
	// followers = coalesced (behind the new leader) + recomputations.
	if got := fg.coalescedCount() + reran.Load(); got != followers {
		t.Errorf("coalesced %d + reruns %d != %d followers", fg.coalescedCount(), reran.Load(), followers)
	}
	if len(fg.inflight) != 0 {
		t.Errorf("%d stale in-flight entries", len(fg.inflight))
	}
}

// TestPlanCacheEvictedSplit is the regression test for the invisible
// capacity evictions: filling a cap-2 cache with four entries must
// report 2 evictions (put) and 0 drops, while an invalidation sweep
// reports drops and no evictions.
func TestPlanCacheEvictedSplit(t *testing.T) {
	c := newPlanCache(2)
	k := func(i int) planKey { return planKey{fp: uint64(i)} }
	r := func(i int) *PlanResponse { return &PlanResponse{Fingerprint: fmt.Sprint(i)} }
	for i := 1; i <= 4; i++ {
		c.put(k(i), r(i))
	}
	st := c.stats()
	if st.Size != 2 || st.Evicted != 2 || st.Dropped != 0 {
		t.Errorf("after capacity churn: %+v, want size 2, evicted 2, dropped 0", st)
	}
	if n := c.dropIf(func(key planKey) bool { return key.fp == 4 }); n != 1 {
		t.Fatalf("dropIf removed %d, want 1", n)
	}
	st = c.stats()
	if st.Evicted != 2 || st.Dropped != 1 {
		t.Errorf("after invalidation: %+v, want evicted 2, dropped 1", st)
	}
	// Refreshing an existing key is not an eviction.
	c.put(k(3), r(3))
	if st = c.stats(); st.Evicted != 2 {
		t.Errorf("refresh counted as eviction: %+v", st)
	}
}

// TestPlanCacheConcurrentDropIf hammers dropIf concurrently with put
// and get under -race: the invalidation sweep must be safe against
// simultaneous inserts, lookups and capacity evictions, and the cache
// must stay internally consistent.
func TestPlanCacheConcurrentDropIf(t *testing.T) {
	c := newPlanCache(32)
	k := func(i int) planKey { return planKey{fp: uint64(i % 64), targets: fmt.Sprint(i % 7)} }
	resp := &PlanResponse{Fingerprint: "x"}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c.put(k(i*4+w), resp)
				c.get(k(i * 3))
			}
		}(w)
	}
	for i := 0; i < 200; i++ {
		c.dropIf(func(key planKey) bool { return key.fp%3 == uint64(i%3) })
	}
	close(stop)
	wg.Wait()
	st := c.stats()
	if st.Size > 32 {
		t.Errorf("cache overflowed its capacity: %+v", st)
	}
	c.mu.Lock()
	if c.ll.Len() != len(c.items) {
		t.Errorf("list/map divergence: %d vs %d", c.ll.Len(), len(c.items))
	}
	for el := c.ll.Front(); el != nil; el = el.Next() {
		if c.items[el.Value.(*cacheEntry).key] != el {
			t.Error("map entry does not point at its list element")
			break
		}
	}
	c.mu.Unlock()
}

// TestContentAddressedUploadFoldsSource is the regression test for the
// silent-source-swap bug: re-uploading the same graph with a different
// default source must land on a distinct content-addressed entry, not
// replace the prior entry's source while the fingerprint-keyed
// invalidation sweep drops nothing.
func TestContentAddressedUploadFoldsSource(t *testing.T) {
	s := newTestServer(t, Config{Shards: 1})

	// Same graph, two different default sources: two distinct entries.
	w1 := doJSON(t, s, http.MethodPost, "/v1/platforms", UploadRequest{Platform: diamondText, Source: "S"})
	if w1.Code != http.StatusCreated {
		t.Fatalf("upload 1: %d %s", w1.Code, w1.Body.String())
	}
	up1 := decodeJSON[UploadResponse](t, w1)
	w2 := doJSON(t, s, http.MethodPost, "/v1/platforms", UploadRequest{Platform: diamondText, Source: "r1"})
	if w2.Code != http.StatusCreated {
		t.Fatalf("upload with a new source replaced an entry: %d %s", w2.Code, w2.Body.String())
	}
	up2 := decodeJSON[UploadResponse](t, w2)
	if up1.ID == up2.ID {
		t.Fatalf("distinct default sources derived the same id %q", up1.ID)
	}
	if up1.Fingerprint != up2.Fingerprint {
		t.Error("graph fingerprint should not depend on the default source")
	}
	for _, up := range []UploadResponse{up1, up2} {
		if up.Replaced || up.Generation != 1 {
			t.Errorf("upload unexpectedly replaced something: %+v", up)
		}
	}
	// Both entries resolve, each with its own default source.
	e1, ok1 := s.reg.get(up1.ID)
	e2, ok2 := s.reg.get(up2.ID)
	if !ok1 || !ok2 || e1.sourceName != "S" || e2.sourceName != "r1" {
		t.Fatalf("entries did not keep their sources: %v/%v %v/%v", ok1, e1, ok2, e2)
	}

	// Same graph and same source: a genuine replace with a generation
	// bump (the historical path).
	w3 := doJSON(t, s, http.MethodPost, "/v1/platforms", UploadRequest{Platform: diamondText, Source: "S"})
	if w3.Code != http.StatusOK {
		t.Fatalf("same-identity re-upload: %d", w3.Code)
	}
	up3 := decodeJSON[UploadResponse](t, w3)
	if up3.ID != up1.ID || !up3.Replaced || up3.Generation != 2 {
		t.Errorf("same-identity re-upload: %+v", up3)
	}
	// And no source at all keeps the historical pf-<fingerprint> form.
	w4 := doJSON(t, s, http.MethodPost, "/v1/platforms", UploadRequest{Platform: diamondText})
	up4 := decodeJSON[UploadResponse](t, w4)
	if up4.ID != "pf-"+up4.Fingerprint {
		t.Errorf("bare-graph id %q, want pf-%s", up4.ID, up4.Fingerprint)
	}
}
