// Package serve is the long-running planning daemon behind cmd/mcastd:
// an HTTP/JSON service that answers Series-of-Multicasts plan requests
// (platform, source, targets, requested bounds and heuristics) over a
// sharded pool of steady.Evaluators.
//
// The serving layers, front to back (DESIGN.md Section 9):
//
//   - a platform registry: clients upload a platform once (the graph
//     text format) and reference it by ID in every later plan request;
//     re-uploading an ID swaps its content and invalidates the plan
//     cache entries of the old content;
//   - an LRU plan cache keyed by (platform fingerprint, source, target
//     list, requested bounds and heuristics) holding complete
//     responses;
//   - a singleflight coalescer: identical in-flight plan requests are
//     computed once, followers receive the leader's response;
//   - a sharded evaluator pool: N shards, each owning one
//     steady.Evaluator (documented as not safe for concurrent use),
//     with requests routed by problem-key hash so identical requests
//     always land on the same shard while one hot platform's distinct
//     requests spread across all shards.
//
// Every plan response is bit-identical to the serial library-call
// sequence for the same request (bounds in canonical order, then the
// requested heuristics in registry order, on one fresh evaluator) —
// concurrency, caching and coalescing are never allowed to change a
// byte of the answer. That is why shards Reset their evaluator between
// requests instead of carrying pooled cuts across them; see
// DESIGN.md Section 9.3 for the measured ULP-level divergence that
// forbids cross-request pooling.
package serve

import (
	"runtime"
)

// Config parameterises a Server.
type Config struct {
	// Shards is the number of evaluator shards; values < 1 mean
	// runtime.GOMAXPROCS(0).
	Shards int
	// CacheSize is the plan cache capacity in responses. 0 means
	// DefaultCacheSize; negative disables the plan cache (benchmarks
	// disable it so every request exercises the evaluator pool).
	CacheSize int
	// MaxPlatformBytes caps an uploaded or inline platform description.
	// 0 means DefaultMaxPlatformBytes.
	MaxPlatformBytes int64
}

// DefaultCacheSize is the plan cache capacity when Config.CacheSize is
// zero.
const DefaultCacheSize = 1024

// DefaultMaxPlatformBytes caps platform uploads when
// Config.MaxPlatformBytes is zero (1 MiB of graph text is ~30k edges,
// far beyond the LPs' practical range).
const DefaultMaxPlatformBytes = 1 << 20

func (c Config) shards() int {
	if c.Shards < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return c.Shards
}

func (c Config) cacheSize() int {
	switch {
	case c.CacheSize < 0:
		return 0
	case c.CacheSize == 0:
		return DefaultCacheSize
	}
	return c.CacheSize
}

func (c Config) maxPlatformBytes() int64 {
	if c.MaxPlatformBytes <= 0 {
		return DefaultMaxPlatformBytes
	}
	return c.MaxPlatformBytes
}
