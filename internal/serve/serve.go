// Package serve is the long-running planning daemon behind cmd/mcastd:
// an HTTP/JSON service that answers Series-of-Multicasts plan requests
// (platform, source, targets, requested bounds and heuristics) over a
// sharded pool of steady.Evaluators.
//
// The serving layers, front to back (DESIGN.md Section 9):
//
//   - a platform registry: clients upload a platform once (the graph
//     text format) and reference it by ID in every later plan request;
//     re-uploading an ID swaps its content and invalidates the plan
//     cache entries of the old content. Platforms are *live*: every
//     mutation — re-upload or a PATCH /v1/platforms/{id} delta batch —
//     bumps a per-platform version, and GET /v1/platforms/{id}/subscribe
//     streams each version's re-plan (DESIGN.md Section 14);
//   - an LRU plan cache keyed by (platform fingerprint, source, target
//     list, requested bounds and heuristics) holding complete
//     responses;
//   - a singleflight coalescer: identical in-flight plan requests are
//     computed once, followers receive the leader's response;
//   - a sharded evaluator pool: N shards, each owning one
//     steady.Evaluator (documented as not safe for concurrent use),
//     with requests routed by problem-key hash so identical requests
//     always land on the same shard while one hot platform's distinct
//     requests spread across all shards.
//
// Every plan response is bit-identical to the serial library-call
// sequence for the same request (bounds in canonical order, then the
// requested heuristics in registry order, on one fresh evaluator) —
// concurrency, caching and coalescing are never allowed to change a
// byte of the answer. That is why shards Reset their evaluator between
// requests instead of carrying pooled cuts across them; see
// DESIGN.md Section 9.3 for the measured ULP-level divergence that
// forbids cross-request pooling.
package serve

import (
	"runtime"
	"time"
)

// Config parameterises a Server.
type Config struct {
	// Shards is the number of evaluator shards; values < 1 mean
	// runtime.GOMAXPROCS(0).
	Shards int
	// CacheSize is the plan cache capacity in responses. 0 means
	// DefaultCacheSize; negative disables the plan cache (benchmarks
	// disable it so every request exercises the evaluator pool).
	CacheSize int
	// MaxPlatformBytes caps an uploaded or inline platform description.
	// 0 means DefaultMaxPlatformBytes.
	MaxPlatformBytes int64
	// MaxBatchItems caps the item count of one POST /v1/plan:batch or
	// POST /v1/jobs body. 0 means DefaultMaxBatchItems.
	MaxBatchItems int
	// MaxJobs caps the unfinished (queued + running) async jobs; a
	// submit beyond it is refused with 429/saturated. 0 means
	// DefaultMaxJobs.
	MaxJobs int
	// MaxJobItems caps the total pending items across unfinished async
	// jobs — the second admission-control axis: many small jobs hit
	// MaxJobs, a few huge ones hit MaxJobItems. 0 means
	// DefaultMaxJobItems.
	MaxJobItems int
	// JobTTL is how long a finished (done or canceled) job's results
	// stay retrievable before eviction. 0 means DefaultJobTTL.
	JobTTL time.Duration
	// VersionHistory caps the retained snapshots per platform — old
	// versions stay addressable (and cold-solvable) until they rotate
	// out. 0 means DefaultVersionHistory.
	VersionHistory int
	// MutationLog caps the change records per platform served by
	// GET /v1/platforms/{id}/log. 0 means DefaultMutationLog.
	MutationLog int
	// DefaultTimeout bounds a request's compute when the request sets no
	// timeout_ms of its own. 0 means no default deadline (the historical
	// behaviour); negative also means none.
	DefaultTimeout time.Duration
	// MaxTimeout caps the per-request timeout_ms field, so a client can
	// shorten its budget but never extend it past the operator's bound.
	// 0 means DefaultMaxTimeout.
	MaxTimeout time.Duration
	// MaxConcurrent caps the computations (plan flights, batch and
	// what-if fan-outs) running at once; see limiter. 0 means
	// 2 x shards; negative disables admission control entirely.
	MaxConcurrent int
	// MaxQueue caps how many admissions may wait for a compute slot
	// before overflow is shed with 429/saturated. 0 means 4 x shards.
	MaxQueue int
}

// DefaultCacheSize is the plan cache capacity when Config.CacheSize is
// zero.
const DefaultCacheSize = 1024

// DefaultMaxPlatformBytes caps platform uploads when
// Config.MaxPlatformBytes is zero (1 MiB of graph text is ~30k edges,
// far beyond the LPs' practical range).
const DefaultMaxPlatformBytes = 1 << 20

func (c Config) shards() int {
	if c.Shards < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return c.Shards
}

func (c Config) cacheSize() int {
	switch {
	case c.CacheSize < 0:
		return 0
	case c.CacheSize == 0:
		return DefaultCacheSize
	}
	return c.CacheSize
}

func (c Config) maxPlatformBytes() int64 {
	if c.MaxPlatformBytes <= 0 {
		return DefaultMaxPlatformBytes
	}
	return c.MaxPlatformBytes
}

// DefaultMaxBatchItems caps one batch or job submission when
// Config.MaxBatchItems is zero.
const DefaultMaxBatchItems = 1024

// DefaultMaxJobs caps unfinished async jobs when Config.MaxJobs is
// zero.
const DefaultMaxJobs = 16

// DefaultMaxJobItems caps pending items across unfinished async jobs
// when Config.MaxJobItems is zero.
const DefaultMaxJobItems = 8192

// DefaultJobTTL is how long finished jobs stay retrievable when
// Config.JobTTL is zero.
const DefaultJobTTL = 10 * time.Minute

func (c Config) maxBatchItems() int {
	if c.MaxBatchItems <= 0 {
		return DefaultMaxBatchItems
	}
	return c.MaxBatchItems
}

func (c Config) maxJobs() int {
	if c.MaxJobs <= 0 {
		return DefaultMaxJobs
	}
	return c.MaxJobs
}

func (c Config) maxJobItems() int {
	if c.MaxJobItems <= 0 {
		return DefaultMaxJobItems
	}
	return c.MaxJobItems
}

func (c Config) jobTTL() time.Duration {
	if c.JobTTL <= 0 {
		return DefaultJobTTL
	}
	return c.JobTTL
}

// DefaultVersionHistory is the per-platform snapshot retention when
// Config.VersionHistory is zero.
const DefaultVersionHistory = 64

// DefaultMutationLog is the per-platform change-log retention when
// Config.MutationLog is zero.
const DefaultMutationLog = 256

// DefaultMaxTimeout caps the client-requested timeout_ms when
// Config.MaxTimeout is zero.
const DefaultMaxTimeout = 5 * time.Minute

func (c Config) defaultTimeout() time.Duration {
	if c.DefaultTimeout <= 0 {
		return 0
	}
	return c.DefaultTimeout
}

func (c Config) maxTimeout() time.Duration {
	if c.MaxTimeout <= 0 {
		return DefaultMaxTimeout
	}
	return c.MaxTimeout
}

func (c Config) maxConcurrent() int {
	switch {
	case c.MaxConcurrent < 0:
		return 0 // disabled
	case c.MaxConcurrent == 0:
		return 2 * c.shards()
	}
	return c.MaxConcurrent
}

func (c Config) maxQueue() int {
	if c.MaxQueue <= 0 {
		return 4 * c.shards()
	}
	return c.MaxQueue
}

// requestTimeout resolves the effective deadline of a request that
// asked for timeoutMillis (0 = none requested): the request's own
// budget clamped to MaxTimeout, else the server default.
func (c Config) requestTimeout(timeoutMillis int64) time.Duration {
	if timeoutMillis <= 0 {
		return c.defaultTimeout()
	}
	d := time.Duration(timeoutMillis) * time.Millisecond
	if max := c.maxTimeout(); d > max {
		return max
	}
	return d
}

func (c Config) versionHistory() int {
	if c.VersionHistory <= 0 {
		return DefaultVersionHistory
	}
	return c.VersionHistory
}

func (c Config) mutationLog() int {
	if c.MutationLog <= 0 {
		return DefaultMutationLog
	}
	return c.MutationLog
}
