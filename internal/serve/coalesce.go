package serve

import (
	"context"
	"errors"
	"sync"
)

// flightGroup coalesces identical in-flight plan computations: the
// first request for a key becomes the leader and computes; followers
// arriving before it finishes block and receive the leader's response.
// (A minimal singleflight, keyed by planKey; responses are immutable
// so sharing the pointer is safe.)
type flightGroup struct {
	mu        sync.Mutex
	inflight  map[planKey]*flightCall
	coalesced int64 // follower count, for /v1/stats
}

type flightCall struct {
	done chan struct{}
	resp *PlanResponse
	err  error
}

func newFlightGroup() *flightGroup {
	return &flightGroup{inflight: make(map[planKey]*flightCall)}
}

// do returns fn's result for key, computing it at most once across
// concurrent callers. shared reports whether this caller was a
// follower of another caller's computation.
//
// A leader that fails with a context cancellation failed for a reason
// private to its own request — its client hung up or its deadline
// passed — not because the computation is broken. Followers must not
// inherit that error: a follower waking to a canceled leader loops and
// re-runs the computation (typically becoming the next leader), and
// its coalesced count is rolled back so the serving accounting still
// adds up. Deterministic errors (bad instance, LP failure) are shared
// as before: re-running could only reproduce them.
func (g *flightGroup) do(key planKey, fn func() (*PlanResponse, error)) (resp *PlanResponse, err error, shared bool) {
	for {
		g.mu.Lock()
		if c, ok := g.inflight[key]; ok {
			g.coalesced++
			g.mu.Unlock()
			<-c.done
			if leaderCanceled(c.err) {
				g.mu.Lock()
				g.coalesced--
				g.mu.Unlock()
				continue
			}
			return c.resp, c.err, true
		}
		c := &flightCall{done: make(chan struct{})}
		g.inflight[key] = c
		g.mu.Unlock()

		// Deregister and wake followers even if fn panics (net/http would
		// recover the panic per-connection; without the defer the stale
		// flightCall would wedge this key forever).
		defer func() {
			g.mu.Lock()
			delete(g.inflight, key)
			g.mu.Unlock()
			close(c.done)
		}()
		c.resp, c.err = fn()
		return c.resp, c.err, false
	}
}

// leaderCanceled reports whether a leader's error is a context
// cancellation — an error about the leader's request, not about the
// computation.
func leaderCanceled(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

func (g *flightGroup) coalescedCount() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.coalesced
}
