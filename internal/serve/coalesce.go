package serve

import "sync"

// flightGroup coalesces identical in-flight plan computations: the
// first request for a key becomes the leader and computes; followers
// arriving before it finishes block and receive the leader's response.
// (A minimal singleflight, keyed by planKey; responses are immutable
// so sharing the pointer is safe.)
type flightGroup struct {
	mu        sync.Mutex
	inflight  map[planKey]*flightCall
	coalesced int64 // follower count, for /v1/stats
}

type flightCall struct {
	done chan struct{}
	resp *PlanResponse
	err  error
}

func newFlightGroup() *flightGroup {
	return &flightGroup{inflight: make(map[planKey]*flightCall)}
}

// do returns fn's result for key, computing it at most once across
// concurrent callers. shared reports whether this caller was a
// follower of another caller's computation.
func (g *flightGroup) do(key planKey, fn func() (*PlanResponse, error)) (resp *PlanResponse, err error, shared bool) {
	g.mu.Lock()
	if c, ok := g.inflight[key]; ok {
		g.coalesced++
		g.mu.Unlock()
		<-c.done
		return c.resp, c.err, true
	}
	c := &flightCall{done: make(chan struct{})}
	g.inflight[key] = c
	g.mu.Unlock()

	// Deregister and wake followers even if fn panics (net/http would
	// recover the panic per-connection; without the defer the stale
	// flightCall would wedge this key forever).
	defer func() {
		g.mu.Lock()
		delete(g.inflight, key)
		g.mu.Unlock()
		close(c.done)
	}()
	c.resp, c.err = fn()
	return c.resp, c.err, false
}

func (g *flightGroup) coalescedCount() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.coalesced
}
