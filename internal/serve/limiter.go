package serve

import (
	"context"
	"sync/atomic"
)

// limiter is the server-wide admission gate over the shard pool: at
// most maxConcurrent computations run at once, at most maxQueue more
// wait for a slot, and everything beyond that is shed immediately with
// 429/saturated. One slot covers one admitted unit of compute — an
// interactive plan's flight leadership, a whole batch fan-out, a whole
// what-if fan-out — so the wait queue is bounded in requests, not in
// solves, and a shed decision is made before any solver work starts.
//
// Cache hits, coalesced followers and degraded fallbacks never touch
// the limiter: shedding exists to protect the solver, and those paths
// do no solving.
type limiter struct {
	slots    chan struct{}
	maxQueue int64
	queued   atomic.Int64
	// shed counts admissions refused at the queue bound; inflight and
	// queued are surfaced by /v1/stats and /readyz.
	shed atomic.Int64
}

func newLimiter(maxConcurrent, maxQueue int) *limiter {
	return &limiter{
		slots:    make(chan struct{}, maxConcurrent),
		maxQueue: int64(maxQueue),
	}
}

// acquire takes a compute slot, waiting in the bounded queue when the
// pool is busy. It returns the saturated apiError when the queue is
// full, or ctx's error if the caller's deadline expires while waiting
// (a request that dies in the queue never occupies a slot).
func (l *limiter) acquire(ctx context.Context) error {
	select {
	case l.slots <- struct{}{}:
		return nil
	default:
	}
	if l.queued.Add(1) > l.maxQueue {
		l.queued.Add(-1)
		l.shed.Add(1)
		return saturated(1, "server is saturated: %d computations in flight, %d queued (queue limit %d)",
			len(l.slots), l.maxQueue, l.maxQueue)
	}
	defer l.queued.Add(-1)
	select {
	case l.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (l *limiter) release() { <-l.slots }

// saturatedNow reports whether a new admission would queue behind a
// full (or overfull) wait queue — the /readyz signal to stop routing
// traffic here before it turns into hard 429s.
func (l *limiter) saturatedNow() bool {
	return len(l.slots) == cap(l.slots) && l.queued.Load() >= l.maxQueue
}

// LimiterStats is the admission-control section of /v1/stats.
type LimiterStats struct {
	MaxConcurrent int   `json:"max_concurrent"`
	MaxQueue      int   `json:"max_queue"`
	InFlight      int   `json:"in_flight"`
	Queued        int64 `json:"queued"`
	Shed          int64 `json:"shed"`
}

func (l *limiter) stats() LimiterStats {
	return LimiterStats{
		MaxConcurrent: cap(l.slots),
		MaxQueue:      int(l.maxQueue),
		InFlight:      len(l.slots),
		Queued:        l.queued.Load(),
		Shed:          l.shed.Load(),
	}
}
