package serve

import (
	"container/list"
	"sync"
)

// planCache is an LRU cache of complete plan responses. Values are
// treated as immutable by every reader (handlers only marshal them),
// so one *PlanResponse may be shared by the cache, the coalescer and
// any number of in-flight writers.
type planCache struct {
	mu      sync.Mutex
	cap     int
	ll      *list.List // front = most recently used
	items   map[planKey]*list.Element
	hits    int64
	misses  int64
	dropped int64 // entries invalidated by platform re-uploads (dropIf)
	evicted int64 // entries displaced by capacity pressure (put)
}

type cacheEntry struct {
	key  planKey
	resp *PlanResponse
}

// newPlanCache returns an LRU cache of the given capacity; capacity 0
// disables caching (every lookup misses, every store is dropped).
func newPlanCache(capacity int) *planCache {
	return &planCache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[planKey]*list.Element),
	}
}

func (c *planCache) get(k planKey) (*PlanResponse, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).resp, true
}

func (c *planCache) put(k planKey, resp *PlanResponse) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		el.Value.(*cacheEntry).resp = resp
		c.ll.MoveToFront(el)
		return
	}
	for c.ll.Len() >= c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
		c.evicted++
	}
	c.items[k] = c.ll.PushFront(&cacheEntry{key: k, resp: resp})
}

// dropIf removes every entry whose key matches pred — the invalidation
// sweep run when a platform ID is re-uploaded with new content. (Those
// entries are already unreachable, since lookups resolve the ID to the
// new fingerprint first; dropping them just returns the space.)
func (c *planCache) dropIf(pred func(planKey) bool) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	var drop []*list.Element
	for el := c.ll.Front(); el != nil; el = el.Next() {
		if pred(el.Value.(*cacheEntry).key) {
			drop = append(drop, el)
		}
	}
	for _, el := range drop {
		c.ll.Remove(el)
		delete(c.items, el.Value.(*cacheEntry).key)
	}
	c.dropped += int64(len(drop))
	return len(drop)
}

// CacheStats is the plan-cache section of GET /v1/stats. Dropped and
// Evicted split the two ways an entry leaves the cache: invalidated
// because its platform content was replaced, or displaced by capacity
// pressure — the signal that the cache is undersized for the traffic.
type CacheStats struct {
	Size    int   `json:"size"`
	Cap     int   `json:"cap"`
	Hits    int64 `json:"hits"`
	Misses  int64 `json:"misses"`
	Dropped int64 `json:"dropped"`
	Evicted int64 `json:"evicted"`
}

func (c *planCache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Size: c.ll.Len(), Cap: c.cap, Hits: c.hits, Misses: c.misses, Dropped: c.dropped, Evicted: c.evicted}
}
