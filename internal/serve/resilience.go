package serve

import (
	"context"
	"errors"
	"net/http"
	"sync/atomic"
	"time"

	"repro/internal/lp"
	"repro/internal/steady"
)

// armStop wires ctx's cancellation into ev's cooperative stop flag for
// the duration of one compute. The returned func disarms: it stops the
// AfterFunc and detaches the flag, so the evaluator is safe to hand to
// the next request. Usage: defer armStop(ctx, ev)().
//
// The flag is per-compute (not per-evaluator): two requests on the
// same shard never see each other's cancellations.
func armStop(ctx context.Context, ev *steady.Evaluator) func() {
	var stop atomic.Bool
	cancel := context.AfterFunc(ctx, func() { stop.Store(true) })
	ev.SetStop(&stop)
	return func() {
		cancel()
		ev.SetStop(nil)
	}
}

// ctxSolveErr translates a compute error under a cancelled context
// into the context's own error: the solver reports lp.ErrCanceled when
// its stop flag fires, but the *reason* it fired — deadline expiry or
// a vanished client — lives in ctx. Callers (and the error envelope)
// branch on context.DeadlineExceeded vs context.Canceled; coalesced
// followers treat both as leader-private and re-run.
func ctxSolveErr(ctx context.Context, err error) error {
	cerr := ctx.Err()
	if cerr == nil {
		return err
	}
	if errors.Is(err, lp.ErrCanceled) || errors.Is(err, cerr) {
		return cerr
	}
	return err
}

// disarmPanic converts a panic on the solve path into a 500/internal
// apiError. It exists for the flight compute closures: a leader that
// panicked with no recovery would leave its followers a nil response
// AND a nil error (flightGroup deregisters via defer but never fills
// the result), which callers would then serve as an empty 200. Usage:
// defer disarmPanic(&err) as the first deferred call of the closure.
func disarmPanic(err *error) {
	if p := recover(); p != nil {
		*err = internalError("plan compute panicked: %v", p)
	}
}

// Drain moves the server into its shutdown drain and blocks until the
// in-flight asynchronous work is out, or ctx expires:
//
//   - /readyz flips unready immediately, so fleet routing stops
//     sending traffic before connections start failing;
//   - every live subscribe stream is closed; subscribers receive one
//     final terminator line ({"final":true}) and their handlers
//     return, so http.Server.Shutdown is not held hostage by
//     never-ending streams;
//   - running async jobs get until ctx's deadline to finish; jobs
//     still unfinished then are canceled (their remaining items drain
//     as per-item "canceled" error lines and the jobs land in state
//     "canceled", exactly like a client DELETE).
//
// Drain does not stop the HTTP listener — call it before
// http.Server.Shutdown, which handles the connection-level drain.
// Synchronous requests already in flight run to completion as usual.
// Drain is idempotent; concurrent calls both wait.
func (s *Server) Drain(ctx context.Context) {
	s.draining.Store(true)
	s.hub.closeAll()
	// Lazy poll, no condition plumbing: job drains are solve-speed
	// affairs and Drain runs once per process exit.
	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
	for s.jobs.activeCount() > 0 {
		select {
		case <-ctx.Done():
			s.jobs.cancelAll()
			// Canceled jobs still drain their remaining items (as error
			// lines); that drain is bounded by the per-item ctx.Err checks,
			// so wait for it without a deadline.
			for s.jobs.activeCount() > 0 {
				<-tick.C
			}
			return
		case <-tick.C:
		}
	}
}

// Draining reports whether Drain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// handleReadyz is GET /readyz: readiness, as opposed to /healthz's
// liveness. It answers 503 while the server is draining (shutdown is
// imminent, route new traffic elsewhere) or while admission control is
// saturated (new compute would be shed with 429 anyway). /healthz
// keeps answering 200 in both states — the process is alive and
// serving, it just should not receive new traffic.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	reason := ""
	switch {
	case s.draining.Load():
		reason = "draining"
	case s.limit != nil && s.limit.saturatedNow():
		reason = "saturated"
	}
	if reason != "" {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"ready": false, "reason": reason})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ready": true})
}
