package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"sync"
	"sync/atomic"

	"repro/internal/faultinject"
	"repro/internal/steady"
)

// BatchRequest is the body of POST /v1/plan:batch and POST /v1/jobs: a
// batch-level PlanSpec holding shared defaults (platform addressing,
// source, targets, bound/heuristic subsets) plus the item list. Every
// item is itself a PlanSpec; item fields override the shared defaults
// field by field, with platform addressing replaced all-or-nothing
// (an item that names either platform_id or an inline platform ignores
// the shared addressing entirely).
type BatchRequest struct {
	PlanSpec
	// Items are the plan specs, answered in submission order.
	Items []BatchItem `json:"items"`
	// NoCache bypasses the plan cache and the coalescer for every item
	// (results are still cached for later requests), mirroring
	// PlanRequest.NoCache.
	NoCache bool `json:"no_cache,omitempty"`
	// TimeoutMillis bounds the whole batch's compute in milliseconds
	// (clamped to the server's MaxTimeout; 0 defers to DefaultTimeout).
	// When the budget expires, items not yet computed drain as
	// 503/deadline error lines — the stream stays well-formed.
	TimeoutMillis int64 `json:"timeout_ms,omitempty"`
}

// BatchItem is one entry of a batch: a PlanSpec whose unset fields
// inherit the batch-level shared spec.
type BatchItem struct {
	PlanSpec
}

// BatchLine is one NDJSON line of a batch (or job) result stream:
// per-item "plan" lines in submission order, then one "summary" line.
// A plan line carries either the PlanResponse — bit-identical to what
// a serial Server.Plan call returns for the same effective spec — or
// the item's error body; item failures never abort the batch. The
// whole line sequence is a pure function of the request and the
// platform contents: worker count, lane assignment, caching and
// coalescing never change a byte.
type BatchLine struct {
	Kind string `json:"kind"` // "plan" or "summary"

	// Plan-line fields. Index is the item's 0-based submission index
	// (meaningful on plan lines only; summary lines always carry 0).
	Index int           `json:"index"`
	Plan  *PlanResponse `json:"plan,omitempty"`
	Error *ErrorBody    `json:"error,omitempty"`

	// Summary-line fields.
	Items      int `json:"items,omitempty"`
	ErrorCount int `json:"errors,omitempty"`
}

// BatchStats is the batch section of GET /v1/stats, covering the
// synchronous endpoint and the async job runner together (both drain
// through the same engine).
type BatchStats struct {
	Requests int64 `json:"requests"`
	Items    int64 `json:"items"`
	Errors   int64 `json:"errors"`
}

// batchBodyLimit bounds a batch body: one worst-case escaped inline
// platform plus a megabyte of spec overhead. Batches at the intended
// scale reference registered platforms; inlining many large platforms
// in one batch is the one shape this cap refuses.
func (c Config) batchBodyLimit() int64 { return 2*c.maxPlatformBytes() + 1<<20 }

// decodeBatch decodes and shape-checks a batch body (shared by the
// synchronous endpoint and job submission).
func (s *Server) decodeBatch(w http.ResponseWriter, r *http.Request) (*BatchRequest, error) {
	var req BatchRequest
	if err := decodeBody(w, r, s.cfg.batchBodyLimit(), &req); err != nil {
		return nil, err
	}
	if len(req.Items) == 0 {
		return nil, badRequest("a batch needs at least one item")
	}
	if max := s.cfg.maxBatchItems(); len(req.Items) > max {
		return nil, badRequest("batch has %d items, the limit is %d", len(req.Items), max)
	}
	return &req, nil
}

// planItem answers one effective spec through the full serving stack —
// registry resolution, plan cache, coalescer — computing, when it must,
// on the pinned shard lane instead of the key-routed shard. Identical
// items therefore hit the same cache entries and coalesce into the
// same flights as interactive /v1/plan traffic. ctx aborts items that
// have not computed yet; an abandoned flight leadership propagates
// ctx's error, which coalesced followers do NOT inherit (they re-run;
// see flightGroup.do).
func (s *Server) planItem(ctx context.Context, lane int, spec *PlanSpec, noCache bool) (*PlanResponse, error) {
	res, err := s.resolve(spec)
	if err != nil {
		return nil, err
	}
	key := res.key()
	compute := func() (resp *PlanResponse, err error) {
		// Guard the whole leadership, hooks included — see planResolved's
		// compute for why a leader must never panic through flight.do.
		defer disarmPanic(&err)
		if hook := s.batchItemHook; hook != nil {
			hook()
		}
		if err := faultinject.SolveEnter(ctx); err != nil {
			return nil, err
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := s.pool.runOnEv(lane, func(ev *steady.Evaluator) (err error) {
			defer disarmPanic(&err)
			defer armStop(ctx, ev)()
			resp, err = executeResolved(ev, res)
			return err
		}); err != nil {
			return nil, ctxSolveErr(ctx, err)
		}
		s.cache.put(key, resp)
		return resp, nil
	}
	if noCache {
		return compute()
	}
	if resp, ok := s.cache.get(key); ok {
		return resp, nil
	}
	resp, err, _ := s.flight.do(key, compute)
	return resp, err
}

// runBatch executes a batch over the shard lanes and emits the full
// NDJSON line sequence (plan lines in submission order, then the
// summary) through emit. It returns the number of item errors.
//
// The fan-out mirrors the what-if engine: min(shards, items) workers
// claim items from an atomic cursor and park each result in a reorder
// buffer, which releases line i once items 0..i have all landed — the
// stream order is the submission order whatever the completion order.
// Workers only hold a shard mutex while actually solving (inside
// planItem's compute), so batch items coalesce safely with interactive
// traffic in either direction.
func (s *Server) runBatch(ctx context.Context, req *BatchRequest, emit func(BatchLine)) int {
	n := len(req.Items)
	specs := make([]*PlanSpec, n)
	for i := range req.Items {
		specs[i] = req.PlanSpec.merged(&req.Items[i].PlanSpec)
	}

	type itemResult struct {
		resp *PlanResponse
		err  error
	}
	results := make([]itemResult, n)
	ready := make(chan int, n)
	var next atomic.Int64
	workers := len(s.pool.shards)
	if workers > n {
		workers = n
	}
	startLane := int(s.batchLane.Add(1)-1) % len(s.pool.shards)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(lane int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := ctx.Err(); err != nil {
					results[i] = itemResult{err: err}
				} else {
					resp, err := s.planItem(ctx, lane, specs[i], req.NoCache)
					results[i] = itemResult{resp: resp, err: err}
				}
				ready <- i
			}
		}((startLane + w) % len(s.pool.shards))
	}

	// Reorder buffer: emit item i once it and every predecessor landed.
	itemErrors := 0
	done := make([]bool, n)
	emitted := 0
	for emitted < n {
		done[<-ready] = true
		for emitted < n && done[emitted] {
			line := BatchLine{Kind: "plan", Index: emitted}
			if r := results[emitted]; r.err != nil {
				_, body := errorBody(r.err)
				line.Error = &body
				itemErrors++
			} else {
				line.Plan = r.resp
			}
			emit(line)
			emitted++
		}
	}
	wg.Wait()
	emit(BatchLine{Kind: "summary", Items: n, ErrorCount: itemErrors})

	s.mu.Lock()
	s.batch.Requests++
	s.batch.Items += int64(n)
	s.batch.Errors += int64(itemErrors)
	s.mu.Unlock()
	return itemErrors
}

// handleBatch is POST /v1/plan:batch: the batch engine streaming
// straight onto the connection. A client hang-up mid-stream cancels
// the remaining items (they drain as canceled error lines instead of
// solving), so a dead batch does not hold the shard lanes against live
// traffic — cancellation never changes bytes a client actually reads,
// because a canceled request has no reader.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	req, err := s.decodeBatch(w, r)
	if err != nil {
		writeError(w, err)
		return
	}
	ctx, cancel := s.requestContext(r.Context(), req.TimeoutMillis)
	defer cancel()
	// One admission slot covers the whole fan-out, taken before the
	// stream starts so saturation is still a clean 429. Per-item
	// admission would deadlock: the items run on shard lanes this batch
	// already occupies.
	if s.limit != nil {
		if err := s.limit.acquire(ctx); err != nil {
			s.countDeadline(err)
			writeError(w, err)
			return
		}
		defer s.limit.release()
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	s.runBatch(ctx, req, func(line BatchLine) {
		enc.Encode(line) //nolint:errcheck // client gone: keep draining, nothing to report
		if flusher != nil {
			flusher.Flush()
		}
	})
}
