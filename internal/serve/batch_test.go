package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/steady"
)

// batchNDJSON marshals the expected NDJSON stream for a batch: one
// compact plan line per response in submission order, then the
// summary. This is the byte-level contract of POST /v1/plan:batch and
// of GET /v1/jobs/{id}/stream.
func batchNDJSON(t *testing.T, lines []BatchLine) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, line := range lines {
		if err := enc.Encode(line); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// serialBatchReference computes the expected plan line sequence for
// the given specs on a fresh evaluator per item — the serial reference
// every batch execution must reproduce byte for byte.
func serialBatchReference(t *testing.T, s *Server, specs []PlanSpec) []byte {
	t.Helper()
	lines := make([]BatchLine, 0, len(specs)+1)
	for i, spec := range specs {
		res, err := s.resolve(&spec)
		if err != nil {
			t.Fatalf("spec %d: %v", i, err)
		}
		ref, err := executeResolved(steady.NewEvaluator(), res)
		if err != nil {
			t.Fatalf("spec %d: %v", i, err)
		}
		lines = append(lines, BatchLine{Kind: "plan", Index: i, Plan: ref})
	}
	lines = append(lines, BatchLine{Kind: "summary", Items: len(specs)})
	return batchNDJSON(t, lines)
}

func uploadDiamond(t *testing.T, s *Server, id string) {
	t.Helper()
	w := doJSON(t, s, http.MethodPost, "/v1/platforms", UploadRequest{ID: id, Platform: diamondText, Source: "S"})
	if w.Code != http.StatusCreated {
		t.Fatalf("upload: %d %s", w.Code, w.Body.String())
	}
}

// TestBatchEndpoint covers the happy path: shared platform reference,
// per-item targets, NDJSON plan lines in submission order, one summary
// line, and every plan byte-identical to the serial reference.
func TestBatchEndpoint(t *testing.T) {
	s := newTestServer(t, Config{Shards: 2})
	uploadDiamond(t, s, "d")

	req := BatchRequest{
		PlanSpec: PlanSpec{PlatformID: "d", Bounds: []string{"scatter", "lb"}, Heuristics: []string{"MCPH"}},
		Items: []BatchItem{
			{PlanSpec{Targets: []string{"t1"}}},
			{PlanSpec{Targets: []string{"t2"}}},
			{PlanSpec{Targets: []string{"t1", "t2"}}},
		},
	}
	w := doJSON(t, s, http.MethodPost, "/v1/plan:batch", req)
	if w.Code != http.StatusOK {
		t.Fatalf("batch: %d %s", w.Code, w.Body.String())
	}
	if ct := w.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type %q", ct)
	}

	specs := make([]PlanSpec, len(req.Items))
	for i := range req.Items {
		specs[i] = *req.PlanSpec.merged(&req.Items[i].PlanSpec)
	}
	if want := serialBatchReference(t, s, specs); !bytes.Equal(w.Body.Bytes(), want) {
		t.Errorf("batch stream diverged from serial reference:\ngot  %s\nwant %s", w.Body.Bytes(), want)
	}

	st := decodeJSON[StatsResponse](t, doJSON(t, s, http.MethodGet, "/v1/stats", nil))
	if st.Batch.Requests != 1 || st.Batch.Items != 3 || st.Batch.Errors != 0 {
		t.Errorf("batch stats %+v", st.Batch)
	}
}

// TestBatchSpecMerging covers the shared/per-item layering: item
// fields override the shared spec field by field, and an item naming
// its own platform (by ID or inline) replaces the shared addressing
// entirely.
func TestBatchSpecMerging(t *testing.T) {
	s := newTestServer(t, Config{Shards: 2})
	uploadDiamond(t, s, "d")
	uploadDiamond(t, s, "d2")

	req := BatchRequest{
		PlanSpec: PlanSpec{PlatformID: "d", Targets: []string{"t1"}, Heuristics: []string{}},
		Items: []BatchItem{
			{PlanSpec{}},                                   // pure inheritance
			{PlanSpec{Targets: []string{"t2"}}},            // target override
			{PlanSpec{PlatformID: "d2"}},                   // platform override by ID
			{PlanSpec{Platform: diamondText, Source: "S"}}, // inline platform replaces shared ID
			{PlanSpec{Bounds: []string{"lb"}}},             // bound subset override
		},
	}
	w := doJSON(t, s, http.MethodPost, "/v1/plan:batch", req)
	if w.Code != http.StatusOK {
		t.Fatalf("batch: %d %s", w.Code, w.Body.String())
	}
	raw := strings.TrimSuffix(w.Body.String(), "\n")
	parts := strings.Split(raw, "\n")
	if len(parts) != len(req.Items)+1 {
		t.Fatalf("%d lines, want %d", len(parts), len(req.Items)+1)
	}
	var lines []BatchLine
	for _, p := range parts {
		var line BatchLine
		if err := json.Unmarshal([]byte(p), &line); err != nil {
			t.Fatalf("bad line %q: %v", p, err)
		}
		lines = append(lines, line)
	}
	for i, line := range lines[:len(req.Items)] {
		if line.Kind != "plan" || line.Index != i || line.Error != nil {
			t.Fatalf("line %d: %+v", i, line)
		}
	}
	if got := lines[0].Plan.Targets; len(got) != 1 || got[0] != "t1" {
		t.Errorf("item 0 targets %v, want the shared [t1]", got)
	}
	if got := lines[1].Plan.Targets; len(got) != 1 || got[0] != "t2" {
		t.Errorf("item 1 targets %v, want the override [t2]", got)
	}
	if lines[2].Plan.PlatformID != "d2" {
		t.Errorf("item 2 platform %q, want the override d2", lines[2].Plan.PlatformID)
	}
	if lines[3].Plan.PlatformID != "" {
		t.Errorf("item 3 platform %q, want empty (inline platform)", lines[3].Plan.PlatformID)
	}
	if got := lines[4].Plan.Bounds; len(got) != 1 || got[0].Name != "lb" {
		t.Errorf("item 4 bounds %+v, want just lb", got)
	}
}

// TestBatchItemErrors: a failing item yields an error line with the
// envelope's body shape and never aborts its siblings.
func TestBatchItemErrors(t *testing.T) {
	s := newTestServer(t, Config{Shards: 2})
	uploadDiamond(t, s, "d")

	req := BatchRequest{
		PlanSpec: PlanSpec{PlatformID: "d", Heuristics: []string{}},
		Items: []BatchItem{
			{PlanSpec{Targets: []string{"t1"}}},
			{PlanSpec{Targets: []string{"nope"}}},                      // unknown target
			{PlanSpec{PlatformID: "missing", Targets: []string{"t1"}}}, // unknown platform
			{PlanSpec{Targets: []string{"t2"}}},
		},
	}
	w := doJSON(t, s, http.MethodPost, "/v1/plan:batch", req)
	if w.Code != http.StatusOK {
		t.Fatalf("batch: %d %s", w.Code, w.Body.String())
	}
	parts := strings.Split(strings.TrimSuffix(w.Body.String(), "\n"), "\n")
	if len(parts) != 5 {
		t.Fatalf("%d lines, want 5", len(parts))
	}
	var lines []BatchLine
	for _, p := range parts {
		var line BatchLine
		if err := json.Unmarshal([]byte(p), &line); err != nil {
			t.Fatal(err)
		}
		lines = append(lines, line)
	}
	if lines[0].Error != nil || lines[3].Error != nil {
		t.Errorf("good items carried errors: %+v %+v", lines[0].Error, lines[3].Error)
	}
	if lines[1].Error == nil || lines[1].Error.Code != CodeBadRequest {
		t.Errorf("item 1 error %+v, want bad_request", lines[1].Error)
	}
	if lines[2].Error == nil || lines[2].Error.Code != CodeNotFound {
		t.Errorf("item 2 error %+v, want not_found", lines[2].Error)
	}
	if sum := lines[4]; sum.Kind != "summary" || sum.Items != 4 || sum.ErrorCount != 2 {
		t.Errorf("summary %+v", sum)
	}
}

// TestBatchValidation: shape errors are envelope errors at the batch
// level, before any item runs.
func TestBatchValidation(t *testing.T) {
	s := newTestServer(t, Config{Shards: 1, MaxBatchItems: 2})
	uploadDiamond(t, s, "d")
	cases := []struct {
		req  BatchRequest
		want int
	}{
		{BatchRequest{PlanSpec: PlanSpec{PlatformID: "d"}}, http.StatusBadRequest}, // no items
		{BatchRequest{PlanSpec: PlanSpec{PlatformID: "d"}, Items: []BatchItem{
			{PlanSpec{Targets: []string{"t1"}}},
			{PlanSpec{Targets: []string{"t2"}}},
			{PlanSpec{Targets: []string{"t1", "t2"}}},
		}}, http.StatusBadRequest}, // over MaxBatchItems
	}
	for i, tc := range cases {
		w := doJSON(t, s, http.MethodPost, "/v1/plan:batch", tc.req)
		if w.Code != tc.want {
			t.Errorf("case %d: %d, want %d (%s)", i, w.Code, tc.want, w.Body.String())
		}
		env := decodeJSON[ErrorEnvelope](t, w)
		if env.Error.Code != CodeBadRequest {
			t.Errorf("case %d: code %q", i, env.Error.Code)
		}
	}
}

// TestBatchHitsCacheAndCoalesces: identical specs inside and across
// batches share the plan cache and the coalescer with interactive
// traffic — a repeated batch costs no additional solves.
func TestBatchHitsCacheAndCoalesces(t *testing.T) {
	s := newTestServer(t, Config{Shards: 2})
	uploadDiamond(t, s, "d")

	// Interactive request first: the batch's identical item must be a
	// cache hit.
	doJSON(t, s, http.MethodPost, "/v1/plan", PlanRequest{PlanSpec: PlanSpec{PlatformID: "d", Targets: []string{"t1"}, Heuristics: []string{}}})
	st0 := decodeJSON[StatsResponse](t, doJSON(t, s, http.MethodGet, "/v1/stats", nil))

	req := BatchRequest{
		PlanSpec: PlanSpec{PlatformID: "d", Heuristics: []string{}},
		Items: []BatchItem{
			{PlanSpec{Targets: []string{"t1"}}}, // cached by the interactive request
			{PlanSpec{Targets: []string{"t2"}}}, // fresh
		},
	}
	if w := doJSON(t, s, http.MethodPost, "/v1/plan:batch", req); w.Code != http.StatusOK {
		t.Fatalf("batch: %d %s", w.Code, w.Body.String())
	}
	st1 := decodeJSON[StatsResponse](t, doJSON(t, s, http.MethodGet, "/v1/stats", nil))
	if hits := st1.PlanCache.Hits - st0.PlanCache.Hits; hits < 1 {
		t.Errorf("batch scored %d cache hits, want >= 1", hits)
	}

	// The same batch again: every item is a cache hit, zero new solves.
	solves0 := st1.Solver.Solves
	if w := doJSON(t, s, http.MethodPost, "/v1/plan:batch", req); w.Code != http.StatusOK {
		t.Fatalf("batch: %d %s", w.Code, w.Body.String())
	}
	st2 := decodeJSON[StatsResponse](t, doJSON(t, s, http.MethodGet, "/v1/stats", nil))
	if st2.Solver.Solves != solves0 {
		t.Errorf("repeated batch added %d solves, want 0", st2.Solver.Solves-solves0)
	}
}

// TestConcurrentBatchesBitIdenticalToSerial is the batch extension of
// the PR 5 concurrent determinism test: several goroutines run the
// same batches while others hammer the interactive plan endpoint with
// overlapping specs, and every batch body must equal the serial
// per-item reference byte for byte — whatever lane an item computed
// on, whether it hit the cache, coalesced behind a batch sibling or
// behind an interactive request.
func TestConcurrentBatchesBitIdenticalToSerial(t *testing.T) {
	s := newTestServer(t, Config{Shards: 4})
	uploadDiamond(t, s, "d")

	req := BatchRequest{
		PlanSpec: PlanSpec{PlatformID: "d"},
		Items: []BatchItem{
			{PlanSpec{Targets: []string{"t1"}}},
			{PlanSpec{Targets: []string{"t2"}, Heuristics: []string{"MCPH"}}},
			{PlanSpec{Targets: []string{"t1", "t2"}}},
			{PlanSpec{Targets: []string{"t2", "t1"}, Bounds: []string{"lb"}, Heuristics: []string{}}},
		},
	}
	specs := make([]PlanSpec, len(req.Items))
	for i := range req.Items {
		specs[i] = *req.PlanSpec.merged(&req.Items[i].PlanSpec)
	}
	want := serialBatchReference(t, s, specs)
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	planBody, err := json.Marshal(PlanRequest{PlanSpec: specs[2]})
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 8
	const perGoroutine = 4
	var wg sync.WaitGroup
	errs := make(chan string, goroutines*perGoroutine)
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			for n := 0; n < perGoroutine; n++ {
				if gi%2 == 1 {
					// Interactive traffic overlapping the batch's specs.
					w := httptest.NewRecorder()
					s.ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/v1/plan", bytes.NewReader(planBody)))
					if w.Code != http.StatusOK {
						errs <- w.Body.String()
					}
					continue
				}
				w := httptest.NewRecorder()
				s.ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/v1/plan:batch", bytes.NewReader(body)))
				if w.Code != http.StatusOK {
					errs <- w.Body.String()
					continue
				}
				if !bytes.Equal(w.Body.Bytes(), want) {
					errs <- "batch stream diverged from the serial reference"
				}
			}
		}(gi)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}
