package platforms

import (
	"math"
	"sort"
	"testing"

	"repro/internal/graph"
	"repro/internal/steady"
	"repro/internal/tree"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// TestFigure1Claims verifies every quantitative claim the paper makes
// about the Section 3 example:
//
//  1. throughput 1 is an upper bound (P7's only in-edge has cost 1);
//  2. no single multicast tree achieves it;
//  3. a combination of two trees does achieve it;
//  4. the optimum (weighted tree packing) is exactly 1.
func TestFigure1Claims(t *testing.T) {
	pl := Figure1()
	p := pl.Problem()

	lb, err := steady.MulticastLB(p)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(lb.Period, 1, 1e-6) {
		t.Errorf("Multicast-LB period = %v, want 1", lb.Period)
	}

	_, bestSingle, err := tree.BestSingleTree(pl.G, pl.Source, pl.Targets)
	if err != nil {
		t.Fatal(err)
	}
	if bestSingle <= 1+1e-9 {
		t.Errorf("best single tree period = %v; the paper requires > 1", bestSingle)
	}
	if !approx(bestSingle, 1.5, 1e-9) {
		t.Errorf("best single tree period = %v, want 3/2 (throughput 2/3)", bestSingle)
	}

	pk, err := tree.PackOptimal(pl.G, pl.Source, pl.Targets)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(pk.Throughput, 1, 1e-6) {
		t.Errorf("optimal packing throughput = %v, want 1", pk.Throughput)
	}
	if len(pk.Trees) < 2 {
		t.Errorf("optimal packing uses %d tree(s); the paper requires >= 2", len(pk.Trees))
	}

	ub, err := steady.ScatterUB(p)
	if err != nil {
		t.Fatal(err)
	}
	if ub.Period < pk.Period()-1e-6 || pk.Period() < lb.Period-1e-6 {
		t.Errorf("bound ordering violated: LB %v, OPT %v, UB %v", lb.Period, pk.Period(), ub.Period)
	}
}

// TestFigure1QuotedSchedule rebuilds the two trees of Figures 1(b) and
// 1(c) at rate 1/2 each and checks the solution the paper tabulates:
// one-port feasibility at throughput 1, the per-edge message counts of
// Figure 1(d) and the occupation times of Figure 1(e).
func TestFigure1QuotedSchedule(t *testing.T) {
	pl, trees := Figure1Trees()
	g := pl.G

	send := make([]float64, g.NumNodes())
	recv := make([]float64, g.NumNodes())
	rate := make([]float64, g.NumEdges())
	for _, edges := range trees {
		tr := &tree.Tree{Root: pl.Source, Edges: edges}
		if err := tr.Validate(g, pl.Source, pl.Targets); err != nil {
			t.Fatalf("quoted tree invalid: %v", err)
		}
		for _, id := range edges {
			e := g.Edge(id)
			send[e.From] += 0.5 * e.Cost
			recv[e.To] += 0.5 * e.Cost
			rate[id] += 0.5
		}
	}
	for v := range send {
		if send[v] > 1+1e-9 || recv[v] > 1+1e-9 {
			t.Fatalf("port overload at %s: send %v recv %v", g.Name(graph.NodeID(v)), send[v], recv[v])
		}
	}

	var rates, occ []float64
	for _, id := range g.ActiveEdges() {
		if rate[id] == 0 {
			t.Errorf("edge %d unused; Figure 1(d) labels every edge", id)
		}
		rates = append(rates, rate[id])
		occ = append(occ, rate[id]*g.Edge(id).Cost)
	}
	wantRates := []float64{0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 1, 1, 1, 1, 1, 1, 1, 1}
	wantOcc := []float64{0.1, 0.1, 0.2, 0.2, 0.2, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 1, 1, 1}
	checkMultiset(t, "message counts (Fig 1d)", rates, wantRates)
	checkMultiset(t, "occupation times (Fig 1e)", occ, wantOcc)

	// The saturated ports quoted in the text.
	for _, name := range []string{"Psource", "P1", "P2", "P3", "P4", "P6"} {
		v, _ := g.NodeByName(name)
		if !approx(send[v], 1, 1e-9) {
			t.Errorf("%s should be send-saturated, got %v", name, send[v])
		}
	}
	for _, name := range []string{"P1", "P6", "P7", "P11"} {
		v, _ := g.NodeByName(name)
		if !approx(recv[v], 1, 1e-9) {
			t.Errorf("%s should be receive-saturated, got %v", name, recv[v])
		}
	}
}

func checkMultiset(t *testing.T, what string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Errorf("%s: %d values, want %d", what, len(got), len(want))
		return
	}
	g := append([]float64(nil), got...)
	sort.Float64s(g)
	for i := range g {
		if !approx(g[i], want[i], 1e-9) {
			t.Errorf("%s: sorted[%d] = %v, want %v (full: %v)", what, i, g[i], want[i], g)
			return
		}
	}
}

// TestFigure4Claims checks the three quoted bound values: scatter
// throughput 1/3 < optimum 1/2 < optimistic bound 2/3.
func TestFigure4Claims(t *testing.T) {
	pl := Figure4()
	p := pl.Problem()
	ub, err := steady.ScatterUB(p)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(ub.Throughput(), 1.0/3, 1e-6) {
		t.Errorf("scatter throughput = %v, want 1/3", ub.Throughput())
	}
	lb, err := steady.MulticastLB(p)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(lb.Throughput(), 2.0/3, 1e-6) {
		t.Errorf("optimistic throughput = %v, want 2/3", lb.Throughput())
	}
	pk, err := tree.PackOptimal(pl.G, pl.Source, pl.Targets)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(pk.Throughput, 0.5, 1e-6) {
		t.Errorf("optimal throughput = %v, want 1/2", pk.Throughput)
	}
}

// TestFigure5Claims checks the |Ptarget| gap gadget: scatter period 3,
// optimistic period 1, optimum 1 (a single tree suffices here).
func TestFigure5Claims(t *testing.T) {
	pl := Figure5()
	p := pl.Problem()
	ub, err := steady.ScatterUB(p)
	if err != nil {
		t.Fatal(err)
	}
	lb, err := steady.MulticastLB(p)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(ub.Period, 3, 1e-6) || !approx(lb.Period, 1, 1e-6) {
		t.Errorf("periods = (%v, %v), want (3, 1)", ub.Period, lb.Period)
	}
	if gap := ub.Period / lb.Period; !approx(gap, float64(len(pl.Targets)), 1e-6) {
		t.Errorf("gap = %v, want %d", gap, len(pl.Targets))
	}
	_, single, err := tree.BestSingleTree(pl.G, pl.Source, pl.Targets)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(single, 1, 1e-9) {
		t.Errorf("single tree period = %v, want 1", single)
	}
}

func TestPlatformProblemPanicsOnCorruption(t *testing.T) {
	pl := Figure5()
	pl.Targets = append(pl.Targets, pl.Source)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	pl.Problem()
}
