// Package platforms reconstructs the example platforms of RR-5123
// (Figures 1, 4 and 5). The figures themselves survive only partially
// in the source text, so the reconstructions were cross-checked against
// every constraint stated in prose: the proof-by-contradiction edge
// structure of Section 3, the per-edge message counts and occupation
// times of Figures 1(d)/1(e), the saturated-port lists, and the quoted
// bound values. See DESIGN.md Section 7 for the derivations.
package platforms

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/steady"
)

// Platform is a ready-made example instance.
type Platform struct {
	G       *graph.Graph
	Source  graph.NodeID
	Targets []graph.NodeID
}

// Problem converts the platform into a steady.Problem.
func (p Platform) Problem() steady.Problem {
	sp, err := steady.NewProblem(p.G, p.Source, p.Targets)
	if err != nil {
		panic("platforms: invalid built-in platform: " + err.Error())
	}
	return sp
}

// Figure1 is the worked example of Section 3: fourteen nodes, targets
// P7..P13. Its optimal steady-state throughput is exactly 1 multicast
// per time unit — matching the upper bound forced by P7's only in-edge
// (cost 1) — but no single multicast tree achieves it (the best single
// tree sustains 2/3): two trees of rate 1/2 each are needed, which is
// the paper's headline motivation for the Series problem.
//
// The edge weights reproduce both figure annotation multisets quoted in
// the text: per-edge message counts {1 x8, 1/2 x7} and occupation times
// {1/2 x7, 1 x3, 1/5 x3, 1/10 x2}.
func Figure1() Platform {
	g := graph.New()
	s := g.AddNode("Psource")
	p := make([]graph.NodeID, 14)
	for i := 1; i <= 13; i++ {
		p[i] = g.AddNode(fmt.Sprintf("P%d", i))
	}
	g.AddEdge(s, p[1], 1)
	g.AddEdge(s, p[3], 0.5)
	g.AddEdge(p[3], p[2], 1)
	g.AddEdge(p[2], p[1], 1)
	g.AddEdge(p[1], p[11], 1)
	g.AddEdge(p[11], p[12], 0.1)
	g.AddEdge(p[12], p[13], 0.1)
	g.AddEdge(p[3], p[4], 1)
	g.AddEdge(p[4], p[5], 2)
	g.AddEdge(p[5], p[6], 1)
	g.AddEdge(p[2], p[6], 1)
	g.AddEdge(p[6], p[7], 1)
	g.AddEdge(p[7], p[8], 0.2)
	g.AddEdge(p[8], p[9], 0.2)
	g.AddEdge(p[9], p[10], 0.2)
	return Platform{G: g, Source: s, Targets: p[7:14]}
}

// Figure1Trees returns the two rate-1/2 multicast trees of Figures
// 1(b) and 1(c) whose superposition achieves the optimal throughput 1.
// Tree A routes everything through P3 (P1 is fed by P2, P6 by P5);
// tree B feeds P1 directly from the source and P6 through P2.
func Figure1Trees() (Platform, [2][]int) {
	pl := Figure1()
	g := pl.G
	id := func(from, to string) int {
		a, _ := g.NodeByName(from)
		b, _ := g.NodeByName(to)
		e, ok := g.FindEdge(a, b)
		if !ok {
			panic("platforms: missing figure-1 edge " + from + "->" + to)
		}
		return e.ID
	}
	shared := []int{
		id("P1", "P11"), id("P11", "P12"), id("P12", "P13"),
		id("P6", "P7"), id("P7", "P8"), id("P8", "P9"), id("P9", "P10"),
	}
	treeA := append([]int{
		id("Psource", "P3"), id("P3", "P2"), id("P2", "P1"), id("P2", "P6"),
	}, shared...)
	treeB := append([]int{
		id("Psource", "P1"), id("Psource", "P3"),
		id("P3", "P4"), id("P4", "P5"), id("P5", "P6"),
	}, shared...)
	return pl, [2][]int{treeA, treeB}
}

// Figure4 is the gadget showing that neither LP bound is tight
// (Section 5.1.3): the scatter bound Multicast-UB yields throughput
// 1/3, the optimistic bound Multicast-LB yields 2/3, and the true
// optimum sits strictly between them at 1/2.
//
// The reconstruction is a miniature of the Theorem 1 set-cover
// reduction: three middle nodes C1, C2, C3 (the two-element subsets
// {x1,x2}, {x2,x3}, {x3,x1}) and three targets x1, x2, x3. It has
// exactly the figure's edge-weight multiset (three cost-1 edges from
// the source, six cost-1/2 subset->element edges) and its three bound
// values are provably 1/3, 1/2 and 2/3:
//
//   - scatter ships three separate units over the cost-1 edges (S's
//     out-port works 3 time units per multicast);
//   - the optimistic bound sets n = 1/2 on every S edge (each target is
//     covered by two subsets, so every s-target cut has capacity 1) and
//     S's out-port works only 3/2;
//   - any real multicast tree must use a cover, i.e. at least two
//     cost-1 edges per message, so no packing beats 1/2 — achieved by
//     any single two-subset tree.
func Figure4() Platform {
	g := graph.New()
	s := g.AddNode("Psource")
	c := make([]graph.NodeID, 3)
	x := make([]graph.NodeID, 3)
	for i := 0; i < 3; i++ {
		c[i] = g.AddNode(fmt.Sprintf("C%d", i+1))
	}
	for i := 0; i < 3; i++ {
		x[i] = g.AddNode(fmt.Sprintf("X%d", i+1))
	}
	for i := 0; i < 3; i++ {
		g.AddEdge(s, c[i], 1)
		g.AddEdge(c[i], x[i], 0.5)
		g.AddEdge(c[i], x[(i+1)%3], 0.5)
	}
	return Platform{G: g, Source: s, Targets: x}
}

// Figure5 is the tightness gadget for the |Ptarget| gap between the
// two LP bounds: a relay star where the source reaches a hub over a
// cost-1 link and the hub serves three targets over cost-1/3 links.
// The optimistic bound (and the true optimum) is period 1; the scatter
// bound pays the trunk three times, period 3.
func Figure5() Platform {
	g := graph.New()
	s := g.AddNode("Psource")
	hub := g.AddNode("A")
	ts := make([]graph.NodeID, 3)
	for i := range ts {
		ts[i] = g.AddNode(fmt.Sprintf("T%d", i+1))
	}
	g.AddEdge(s, hub, 1)
	for _, t := range ts {
		g.AddEdge(hub, t, 1.0/3)
	}
	return Platform{G: g, Source: s, Targets: ts}
}
