package repro_test

import (
	"math"
	"testing"

	"repro"
)

// TestFacadeEndToEnd drives the whole public surface on the paper's
// Figure 1 example: bounds, heuristics, exact optimum and simulation.
func TestFacadeEndToEnd(t *testing.T) {
	pl := repro.Figure1()
	p, err := repro.NewProblem(pl.G, pl.Source, pl.Targets)
	if err != nil {
		t.Fatal(err)
	}
	lb, err := repro.LowerBound(p)
	if err != nil {
		t.Fatal(err)
	}
	ub, err := repro.ScatterBound(p)
	if err != nil {
		t.Fatal(err)
	}
	if lb.Period > ub.Period {
		t.Fatalf("LB %v > UB %v", lb.Period, ub.Period)
	}
	pk, err := repro.Optimal(pl.G, pl.Source, pl.Targets)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pk.Throughput-1) > 1e-6 {
		t.Fatalf("optimal throughput = %v, want 1", pk.Throughput)
	}
	_, single, err := repro.BestSingleTree(pl.G, pl.Source, pl.Targets)
	if err != nil {
		t.Fatal(err)
	}
	if single <= pk.Period()+1e-9 {
		t.Fatalf("single tree %v should be worse than packing %v", single, pk.Period())
	}
	for _, h := range repro.Heuristics() {
		res, err := h.Run(p)
		if err != nil {
			t.Fatalf("%s: %v", h.Name, err)
		}
		if res.Period < lb.Period-1e-6 {
			t.Fatalf("%s beats the lower bound", h.Name)
		}
	}
	rep, err := repro.Simulate(pl.G, pl.Source, pl.Targets, pk.Trees, 120)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Throughput < 0.85 {
		t.Fatalf("simulated optimal packing at %v", rep.Throughput)
	}
}

func TestFacadeTiersAndSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is slow")
	}
	pl, err := repro.GenerateSmallPlatform(5)
	if err != nil {
		t.Fatal(err)
	}
	if pl.G.NumNodes() != 30 {
		t.Fatalf("small platform nodes = %d", pl.G.NumNodes())
	}
	cells, err := repro.RunSweep(repro.SweepConfig{
		Size:      "small",
		Platforms: 1,
		Densities: []float64{0.3},
		Seed:      5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) == 0 {
		t.Fatal("empty sweep")
	}
	if out := repro.SweepTable(cells, "lb"); len(out) == 0 {
		t.Fatal("empty table")
	}
}
