package repro_test

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro"
)

// TestFacadeEndToEnd drives the whole public surface on the paper's
// Figure 1 example: bounds, heuristics, exact optimum and simulation.
func TestFacadeEndToEnd(t *testing.T) {
	pl := repro.Figure1()
	p, err := repro.NewProblem(pl.G, pl.Source, pl.Targets)
	if err != nil {
		t.Fatal(err)
	}
	lb, err := repro.LowerBound(p)
	if err != nil {
		t.Fatal(err)
	}
	ub, err := repro.ScatterBound(p)
	if err != nil {
		t.Fatal(err)
	}
	if lb.Period > ub.Period {
		t.Fatalf("LB %v > UB %v", lb.Period, ub.Period)
	}
	pk, err := repro.Optimal(pl.G, pl.Source, pl.Targets)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pk.Throughput-1) > 1e-6 {
		t.Fatalf("optimal throughput = %v, want 1", pk.Throughput)
	}
	_, single, err := repro.BestSingleTree(pl.G, pl.Source, pl.Targets)
	if err != nil {
		t.Fatal(err)
	}
	if single <= pk.Period()+1e-9 {
		t.Fatalf("single tree %v should be worse than packing %v", single, pk.Period())
	}
	for _, h := range repro.Heuristics() {
		res, err := h.Run(p)
		if err != nil {
			t.Fatalf("%s: %v", h.Name, err)
		}
		if res.Period < lb.Period-1e-6 {
			t.Fatalf("%s beats the lower bound", h.Name)
		}
	}
	rep, err := repro.Simulate(pl.G, pl.Source, pl.Targets, pk.Trees, 120)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Throughput < 0.85 {
		t.Fatalf("simulated optimal packing at %v", rep.Throughput)
	}
}

func TestFacadeTiersAndSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is slow")
	}
	pl, err := repro.GenerateSmallPlatform(5)
	if err != nil {
		t.Fatal(err)
	}
	if pl.G.NumNodes() != 30 {
		t.Fatalf("small platform nodes = %d", pl.G.NumNodes())
	}
	cells, err := repro.RunSweep(repro.SweepConfig{
		Size:      "small",
		Platforms: 1,
		Densities: []float64{0.3},
		Seed:      5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) == 0 {
		t.Fatal("empty sweep")
	}
	if out := repro.SweepTable(cells, "lb"); len(out) == 0 {
		t.Fatal("empty table")
	}
}

// TestFacadeServe drives the exported serving surface: upload a
// platform over HTTP, plan against it, and read the stats endpoint.
func TestFacadeServe(t *testing.T) {
	srv := repro.NewPlanServer(repro.ServeConfig{Shards: 2})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	pl := repro.Figure1()
	var text strings.Builder
	if err := pl.G.Encode(&text); err != nil {
		t.Fatal(err)
	}
	upload, _ := json.Marshal(repro.PlatformUpload{
		ID: "fig1", Platform: text.String(), Source: pl.G.Name(pl.Source),
	})
	resp, err := http.Post(ts.URL+"/v1/platforms", "application/json", bytes.NewReader(upload))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload: %d", resp.StatusCode)
	}

	var targets []string
	for _, id := range pl.Targets {
		targets = append(targets, pl.G.Name(id))
	}
	plan, _ := json.Marshal(repro.PlanRequest{PlanSpec: repro.PlanSpec{PlatformID: "fig1", Targets: targets}})
	resp, err = http.Post(ts.URL+"/v1/plan", "application/json", bytes.NewReader(plan))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("plan: %d", resp.StatusCode)
	}
	var pr repro.PlanResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	if len(pr.Bounds) != 3 || len(pr.Plans) != 4 {
		t.Fatalf("plan shape: %d bounds, %d plans", len(pr.Bounds), len(pr.Plans))
	}
	// The served lower bound must agree with the direct library call.
	p, err := repro.NewProblem(pl.G, pl.Source, pl.Targets)
	if err != nil {
		t.Fatal(err)
	}
	lb, err := repro.LowerBound(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range pr.Bounds {
		if b.Name == "lb" && math.Float64bits(b.Period) != math.Float64bits(lb.Period) {
			t.Errorf("served lb %v != library %v", b.Period, lb.Period)
		}
	}

	stats, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer stats.Body.Close()
	var st struct {
		Shards int `json:"shards"`
		Solver struct {
			Solves int `json:"Solves"`
		} `json:"solver"`
	}
	if err := json.NewDecoder(stats.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Shards != 2 || st.Solver.Solves == 0 {
		t.Errorf("stats: %+v", st)
	}
}

// TestFacadeWhatIf drives the resilience engine through the public
// surface on the Figure 1 example: the default scenario family runs,
// deltas are measured against the baseline, and the criticality
// rankings are populated and sorted worst-first.
func TestFacadeWhatIf(t *testing.T) {
	pl := repro.Figure1()
	p, err := repro.NewProblem(pl.G, pl.Source, pl.Targets)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := repro.WhatIf(p, repro.WhatIfDefaults())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) == 0 || len(rep.Results) != len(rep.Scenarios) {
		t.Fatalf("results/scenarios mismatch: %d vs %d", len(rep.Results), len(rep.Scenarios))
	}
	for i, r := range rep.Results {
		if r.Err != nil {
			t.Errorf("scenario %d: %v", i, r.Err)
		}
	}
	if len(rep.CriticalNodes) == 0 || len(rep.CriticalEdges) == 0 {
		t.Fatal("empty criticality rankings")
	}
	for i := 1; i < len(rep.CriticalNodes); i++ {
		if rep.CriticalNodes[i-1].Delta > rep.CriticalNodes[i].Delta {
			t.Fatal("critical nodes are not sorted worst-first")
		}
	}
	if rep.BaselineStats.Solves == 0 {
		t.Errorf("baseline recorded no solves: %+v", rep.BaselineStats)
	}
}
