package repro

import (
	"math/rand"

	"repro/internal/exp"
	"repro/internal/graph"
	"repro/internal/heur"
	"repro/internal/platforms"
	"repro/internal/sim"
	"repro/internal/steady"
	"repro/internal/tiers"
	"repro/internal/tree"
)

// Core model types.
type (
	// Graph is a heterogeneous platform: an edge-weighted digraph whose
	// edge costs are transfer times per unit-size message.
	Graph = graph.Graph
	// NodeID identifies a platform node.
	NodeID = graph.NodeID
	// Problem is a Series-of-Multicasts instance: platform, source and
	// target set.
	Problem = steady.Problem
	// Bound is the outcome of one of the steady-state LP programs.
	Bound = steady.Bound
	// HeuristicResult is the outcome of one heuristic run.
	HeuristicResult = heur.Result
	// Heuristic is a named algorithm for the Series problem.
	Heuristic = heur.Heuristic
	// Tree is a multicast arborescence.
	Tree = tree.Tree
	// WeightedTree is a multicast tree carrying a steady-state rate.
	WeightedTree = tree.WeightedTree
	// Packing is an optimal weighted tree packing (the exact optimum).
	Packing = tree.Packing
	// SimReport summarises a one-port simulation run.
	SimReport = sim.Report
	// ExamplePlatform is one of the paper's worked example platforms.
	ExamplePlatform = platforms.Platform
	// TiersPlatform is a generated hierarchical topology.
	TiersPlatform = tiers.Platform
)

// NewPlatform returns an empty platform graph.
func NewPlatform() *Graph { return graph.New() }

// NewProblem validates and builds a Series-of-Multicasts instance.
func NewProblem(g *Graph, source NodeID, targets []NodeID) (Problem, error) {
	return steady.NewProblem(g, source, targets)
}

// ScatterBound computes the paper's Multicast-UB: the achievable
// scatter relaxation, an upper bound on the optimal period.
func ScatterBound(p Problem) (*Bound, error) { return steady.ScatterUB(p) }

// LowerBound computes the paper's Multicast-LB: the optimistic
// relaxation, a lower bound on the optimal period (not achievable in
// general).
func LowerBound(p Problem) (*Bound, error) { return steady.MulticastLB(p) }

// BroadcastBound computes Broadcast-EB: the exact optimal steady-state
// broadcast period of the active platform.
func BroadcastBound(g *Graph, source NodeID) (*Bound, error) {
	return steady.BroadcastEB(g, source)
}

// Heuristics returns the paper's heuristic set (MCPH, Augmented
// Multicast, Reduced Broadcast, Augmented Sources).
func Heuristics() []Heuristic { return heur.All() }

// Optimal computes the exact optimal steady-state multicast throughput
// via the Theorem 4 weighted tree-packing LP (exponential in the number
// of targets; small instances only).
func Optimal(g *Graph, source NodeID, targets []NodeID) (*Packing, error) {
	return tree.PackOptimal(g, source, targets)
}

// BestSingleTree computes the exact best single multicast tree (the
// COMPACT-MULTICAST optimum for S = 2; exponential, small instances
// only).
func BestSingleTree(g *Graph, source NodeID, targets []NodeID) (*Tree, float64, error) {
	return tree.BestSingleTree(g, source, targets)
}

// Simulate runs count pipelined multicasts through the weighted trees
// under the one-port model and reports the sustained throughput.
func Simulate(g *Graph, source NodeID, targets []NodeID, trees []WeightedTree, count int) (*SimReport, error) {
	return sim.Run(g, source, targets, trees, count)
}

// GenerateSmallPlatform generates the paper's "small" Tiers-like
// platform preset (30 nodes, 17 LAN hosts).
func GenerateSmallPlatform(seed int64) (*TiersPlatform, error) {
	return tiers.Generate(tiers.Small(seed))
}

// GenerateBigPlatform generates the paper's "big" preset (65 nodes, 47
// LAN hosts).
func GenerateBigPlatform(seed int64) (*TiersPlatform, error) {
	return tiers.Generate(tiers.Big(seed))
}

// RandomTargets draws a target set of the given density from a
// generated platform's LAN hosts.
func RandomTargets(p *TiersPlatform, rng *rand.Rand, density float64) []NodeID {
	return p.RandomTargets(rng, density)
}

// Figure1, Figure4 and Figure5 return the paper's worked example
// platforms (see internal/platforms for their derivations).
func Figure1() ExamplePlatform { return platforms.Figure1() }

// Figure4 returns the "neither bound is tight" gadget.
func Figure4() ExamplePlatform { return platforms.Figure4() }

// Figure5 returns the |Ptarget|-gap relay star.
func Figure5() ExamplePlatform { return platforms.Figure5() }

// SweepConfig parameterises a Figure 11 density sweep.
type SweepConfig = exp.Config

// SweepCell is one aggregated (density, series) data point.
type SweepCell = exp.Cell

// RunSweep executes a Figure 11 experiment sweep.
func RunSweep(cfg SweepConfig) ([]SweepCell, error) { return exp.Run(cfg) }

// SweepTable renders sweep cells as one Figure 11 panel ("scatter" or
// "lb" baseline).
func SweepTable(cells []SweepCell, baseline string) string { return exp.Table(cells, baseline) }
