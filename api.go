package repro

import (
	"io"
	"math/rand"
	"net/http"

	"repro/internal/exp"
	"repro/internal/graph"
	"repro/internal/heur"
	"repro/internal/mcastclient"
	"repro/internal/platforms"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/steady"
	"repro/internal/tiers"
	"repro/internal/tree"
	"repro/internal/whatif"
)

// Core model types.
type (
	// Graph is a heterogeneous platform: an edge-weighted digraph whose
	// edge costs are transfer times per unit-size message.
	Graph = graph.Graph
	// NodeID identifies a platform node.
	NodeID = graph.NodeID
	// Problem is a Series-of-Multicasts instance: platform, source and
	// target set.
	Problem = steady.Problem
	// Bound is the outcome of one of the steady-state LP programs.
	Bound = steady.Bound
	// HeuristicResult is the outcome of one heuristic run.
	HeuristicResult = heur.Result
	// Heuristic is a named algorithm for the Series problem.
	Heuristic = heur.Heuristic
	// Tree is a multicast arborescence.
	Tree = tree.Tree
	// WeightedTree is a multicast tree carrying a steady-state rate.
	WeightedTree = tree.WeightedTree
	// Packing is an optimal weighted tree packing (the exact optimum).
	Packing = tree.Packing
	// SimReport summarises a one-port simulation run.
	SimReport = sim.Report
	// ExamplePlatform is one of the paper's worked example platforms.
	ExamplePlatform = platforms.Platform
	// TiersPlatform is a generated hierarchical topology.
	TiersPlatform = tiers.Platform
)

// NewPlatform returns an empty platform graph.
func NewPlatform() *Graph { return graph.New() }

// NewProblem validates and builds a Series-of-Multicasts instance.
func NewProblem(g *Graph, source NodeID, targets []NodeID) (Problem, error) {
	return steady.NewProblem(g, source, targets)
}

// ScatterBound computes the paper's Multicast-UB: the achievable
// scatter relaxation, an upper bound on the optimal period.
func ScatterBound(p Problem) (*Bound, error) { return steady.ScatterUB(p) }

// LowerBound computes the paper's Multicast-LB: the optimistic
// relaxation, a lower bound on the optimal period (not achievable in
// general).
func LowerBound(p Problem) (*Bound, error) { return steady.MulticastLB(p) }

// BroadcastBound computes Broadcast-EB: the exact optimal steady-state
// broadcast period of the active platform.
func BroadcastBound(g *Graph, source NodeID) (*Bound, error) {
	return steady.BroadcastEB(g, source)
}

// Heuristics returns the paper's heuristic set (MCPH, Augmented
// Multicast, Reduced Broadcast, Augmented Sources). Every run uses a
// private bound evaluator; use HeuristicsWith to share one.
func Heuristics() []Heuristic { return heur.All() }

// Evaluator is a caching, warm-starting service for the steady-state
// bound programs: results are cached by platform fingerprint and
// target set, all solves share one reusable LP workspace, and the
// cutting-plane / column-generation state (cuts, path columns) of
// earlier solves seeds later related ones. The LP-based heuristics run
// their incremental inner loops (drop node, add node, promote source)
// against it. Not safe for concurrent use — hold one per goroutine.
type Evaluator = steady.Evaluator

// SolveStats aggregates LP-solver and evaluator activity: solves,
// simplex iterations, warm-start and cache hits, cutting-plane rounds
// and cuts.
type SolveStats = steady.SolveStats

// NewEvaluator returns an empty bound evaluator with its own LP
// workspace.
func NewEvaluator() *Evaluator { return steady.NewEvaluator() }

// HeuristicsWith returns the paper's heuristic set bound to a shared
// evaluator, so consecutive runs on the same platform reuse each
// other's LP work.
func HeuristicsWith(ev *Evaluator) []Heuristic { return heur.AllWith(ev) }

// Optimal computes the exact optimal steady-state multicast throughput
// via the Theorem 4 weighted tree-packing LP (exponential in the number
// of targets; small instances only).
func Optimal(g *Graph, source NodeID, targets []NodeID) (*Packing, error) {
	return tree.PackOptimal(g, source, targets)
}

// BestSingleTree computes the exact best single multicast tree (the
// COMPACT-MULTICAST optimum for S = 2; exponential, small instances
// only).
func BestSingleTree(g *Graph, source NodeID, targets []NodeID) (*Tree, float64, error) {
	return tree.BestSingleTree(g, source, targets)
}

// Simulate runs count pipelined multicasts through the weighted trees
// under the one-port model and reports the sustained throughput.
func Simulate(g *Graph, source NodeID, targets []NodeID, trees []WeightedTree, count int) (*SimReport, error) {
	return sim.Run(g, source, targets, trees, count)
}

// GenerateSmallPlatform generates the paper's "small" Tiers-like
// platform preset (30 nodes, 17 LAN hosts).
func GenerateSmallPlatform(seed int64) (*TiersPlatform, error) {
	return tiers.Generate(tiers.Small(seed))
}

// GenerateBigPlatform generates the paper's "big" preset (65 nodes, 47
// LAN hosts).
func GenerateBigPlatform(seed int64) (*TiersPlatform, error) {
	return tiers.Generate(tiers.Big(seed))
}

// RandomTargets draws a target set of the given density from a
// generated platform's LAN hosts.
func RandomTargets(p *TiersPlatform, rng *rand.Rand, density float64) []NodeID {
	return p.RandomTargets(rng, density)
}

// Figure1, Figure4 and Figure5 return the paper's worked example
// platforms (see internal/platforms for their derivations).
func Figure1() ExamplePlatform { return platforms.Figure1() }

// Figure4 returns the "neither bound is tight" gadget.
func Figure4() ExamplePlatform { return platforms.Figure4() }

// Figure5 returns the |Ptarget|-gap relay star.
func Figure5() ExamplePlatform { return platforms.Figure5() }

// Serving layer (cmd/mcastd): a long-running HTTP/JSON planning
// daemon over a sharded evaluator pool, with a platform registry, an
// LRU plan cache and singleflight request coalescing. Every response
// is bit-identical to the serial library-call sequence for the same
// request; see DESIGN.md Section 9.
type (
	// PlanServer is the planning daemon: an http.Handler wiring the
	// platform registry, plan cache, coalescer and evaluator shards.
	PlanServer = serve.Server
	// ServeConfig parameterises a PlanServer (shard count, plan cache
	// capacity, upload size limit).
	ServeConfig = serve.Config
	// PlanSpec is the shared request core — platform addressing,
	// source, targets, bound/heuristic subsets — embedded by
	// PlanRequest, WhatifRequest and BatchItem. The embedding is
	// wire-transparent: the JSON layout is the same flat object the v1
	// API has always accepted.
	PlanSpec = serve.PlanSpec
	// PlanRequest is the body of POST /v1/plan.
	PlanRequest = serve.PlanRequest
	// PlanResponse is the body of a successful POST /v1/plan.
	PlanResponse = serve.PlanResponse
	// PlatformUpload is the body of POST /v1/platforms.
	PlatformUpload = serve.UploadRequest
	// BatchRequest is the body of POST /v1/plan:batch and POST
	// /v1/jobs: shared spec defaults plus an item list.
	BatchRequest = serve.BatchRequest
	// BatchItem is one entry of a BatchRequest.
	BatchItem = serve.BatchItem
	// BatchLine is one NDJSON line of a batch (or job) result stream.
	BatchLine = serve.BatchLine
	// JobStatus is the body of a job poll (GET /v1/jobs/{id}).
	JobStatus = serve.JobStatus
	// APIErrorBody is the structured error payload every v1 endpoint
	// wraps in {"error": {...}} on failure.
	APIErrorBody = serve.ErrorBody
	// APIErrorEnvelope is the full error response body.
	APIErrorEnvelope = serve.ErrorEnvelope
)

// NewPlanServer returns a ready planning daemon; mount it on any
// http.Server (cmd/mcastd adds flags, logging and graceful shutdown).
func NewPlanServer(cfg ServeConfig) *PlanServer { return serve.New(cfg) }

type (
	// Client is the typed Go client for a running mcastd: platform
	// upload, plans, batch streams and the async job lifecycle, with
	// server failures decoded into *APIError.
	Client = mcastclient.Client
	// APIError is a structured v1 API failure: HTTP status plus the
	// decoded error envelope (code and message).
	APIError = mcastclient.APIError
)

// NewClient returns a Client for the daemon at baseURL. A nil
// httpClient means http.DefaultClient.
func NewClient(baseURL string, httpClient *http.Client) *Client {
	return mcastclient.New(baseURL, httpClient)
}

// Serve runs a planning daemon on addr until the listener fails. For
// graceful shutdown, build an http.Server around NewPlanServer
// instead (see cmd/mcastd).
func Serve(addr string, cfg ServeConfig) error {
	return http.ListenAndServe(addr, serve.New(cfg))
}

// Live platforms (PATCH /v1/platforms/{id}, GET .../subscribe):
// platforms are versioned and mutable in place via atomic delta
// batches, and subscriptions stream a fresh plan per version —
// byte-identical to a cold solve of that version's snapshot. The
// same delta vocabulary drives Evaluator.Replan, the warm in-process
// re-solve; see DESIGN.md Section 14.
type (
	// Delta is an ordered, atomically-applied batch of platform
	// mutations (see DropNode, AddEdge, ScaleEdgeCost, ...).
	Delta = graph.Delta
	// DeltaOp is one platform mutation.
	DeltaOp = graph.DeltaOp
	// ReplanResult is the outcome of Evaluator.Replan: the re-solved
	// plan plus whether the warm path or a cold fallback produced it.
	ReplanResult = steady.ReplanResult
	// PatchOp is the wire spelling of a DeltaOp: nodes by name, edges
	// by ID or by endpoint names.
	PatchOp = serve.PatchOp
	// PatchRequest is the body of PATCH /v1/platforms/{id}.
	PatchRequest = serve.PatchRequest
	// PatchResponse reports the post-patch version and fingerprint plus
	// cache invalidation/repair counts.
	PatchResponse = serve.PatchResponse
	// ChangeRecord is one entry of GET /v1/platforms/{id}/log.
	ChangeRecord = serve.ChangeRecord
	// SubscribeLine is one streamed update of GET
	// /v1/platforms/{id}/subscribe: a version and its plan (or error).
	SubscribeLine = serve.SubscribeLine
	// SubscribeSpec selects what a Client.Subscribe stream re-plans.
	SubscribeSpec = mcastclient.SubscribeSpec
	// Subscription is a Client.Subscribe pull iterator (Next/Close).
	Subscription = mcastclient.Subscription
)

// Delta op constructors, re-exported for library callers driving
// Evaluator.Replan directly (HTTP callers use the PatchOp wire form).
func DropNode(v NodeID) DeltaOp    { return graph.DropNodeOp(v) }
func RestoreNode(v NodeID) DeltaOp { return graph.RestoreNodeOp(v) }
func AddNode(name string) DeltaOp  { return graph.AddNodeOp(name) }
func DisableEdge(id int) DeltaOp   { return graph.DisableEdgeOp(id) }
func EnableEdge(id int) DeltaOp    { return graph.EnableEdgeOp(id) }
func AddEdge(from, to NodeID, cost float64) DeltaOp {
	return graph.AddEdgeOp(from, to, cost)
}
func SetEdgeCost(id int, cost float64) DeltaOp {
	return graph.SetEdgeCostOp(id, cost)
}
func ScaleEdgeCost(id int, factor float64) DeltaOp {
	return graph.ScaleEdgeCostOp(id, factor)
}

// What-if resilience engine (internal/whatif, POST /v1/whatif): given
// an instance, evaluate node failures, per-edge link failures and
// bandwidth degradations, and secondary-source promotions — each on an
// evaluator clone warm-started from the baseline solve — and rank the
// critical nodes and edges. Reports are bit-identical for any worker
// count; see DESIGN.md Section 10.
type (
	// WhatifConfig selects the scenario family and worker count.
	WhatifConfig = whatif.Config
	// WhatifScenario is one platform perturbation.
	WhatifScenario = whatif.Scenario
	// WhatifResult is one scenario's outcome (throughput delta vs the
	// baseline, surviving MCPH tree, infeasibility).
	WhatifResult = whatif.Result
	// WhatifReport is the full analysis: baseline, per-scenario results
	// and the criticality rankings.
	WhatifReport = whatif.Report
	// WhatifRequest is the body of POST /v1/whatif on a PlanServer.
	WhatifRequest = serve.WhatifRequest
)

// WhatIf runs the resilience engine on an instance. The zero config
// evaluates nothing; start from WhatIfDefaults for the full family
// (every node failure, every link failure, every source promotion).
func WhatIf(p Problem, cfg WhatifConfig) (*WhatifReport, error) {
	return whatif.Analyze(p, cfg)
}

// WhatIfDefaults is the scenario family cmd/mcast -whatif and the
// serving layer run by default.
func WhatIfDefaults() WhatifConfig { return whatif.DefaultConfig() }

// SweepConfig parameterises a Figure 11 density sweep. The grid runs
// concurrently by default (Workers < 1 means runtime.GOMAXPROCS(0));
// set Workers to override the pool size, or to 1 to force serial
// execution. Per-task seeding keeps the result bit-identical for any
// worker count.
type SweepConfig = exp.Config

// SweepCell is one aggregated (density, series) data point.
type SweepCell = exp.Cell

// SweepTask identifies one (platform, density) grid point of a sweep.
type SweepTask = exp.Task

// SweepTaskResult is the structured outcome of one sweep task; task
// failures are carried in its Err field rather than aborting the sweep.
type SweepTaskResult = exp.TaskResult

// RunSweep executes a Figure 11 experiment sweep on SweepConfig.Workers
// concurrent workers and aggregates the per-task results into cells.
func RunSweep(cfg SweepConfig) ([]SweepCell, error) { return exp.Run(cfg) }

// RunSweepTasks executes the sweep grid and returns the raw per-task
// results in task order (platform-major), without aggregation.
func RunSweepTasks(cfg SweepConfig) ([]SweepTaskResult, error) { return exp.Sweep(cfg) }

// AggregateSweep folds per-task results into one cell per (density,
// series), skipping failed tasks.
func AggregateSweep(results []SweepTaskResult) []SweepCell { return exp.Aggregate(results) }

// AggregateSweepStats folds the per-task LP-solver statistics of a
// sweep into one total.
func AggregateSweepStats(results []SweepTaskResult) SolveStats { return exp.AggregateStats(results) }

// SweepTable renders sweep cells as one Figure 11 panel ("scatter" or
// "lb" baseline).
func SweepTable(cells []SweepCell, baseline string) string { return exp.Table(cells, baseline) }

// EncodeSweep persists sweep cells as JSON so a finished sweep can be
// re-rendered later without re-solving the LPs.
func EncodeSweep(w io.Writer, cells []SweepCell) error { return exp.EncodeCells(w, cells) }

// DecodeSweep reads cells previously written by EncodeSweep.
func DecodeSweep(r io.Reader) ([]SweepCell, error) { return exp.DecodeCells(r) }
