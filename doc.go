// Package repro reproduces "Complexity results and heuristics for
// pipelined multicast operations on heterogeneous platforms" (Beaumont,
// Legrand, Marchal, Robert — INRIA RR-5123 / ICPP 2004): steady-state
// throughput optimisation for a series of multicasts on an
// edge-weighted platform digraph under the bidirectional one-port
// model.
//
// This root package is a thin façade over the implementation packages:
//
//	internal/graph     platform model (digraph, activity masks, paths)
//	internal/lp        two-phase primal simplex (built from scratch)
//	internal/flow      max-flow / min-cut / flow decomposition
//	internal/steady    the paper's LP bounds (Multicast-UB/LB,
//	                   Broadcast-EB, MulticastMultiSource-UB)
//	internal/heur      the four heuristics (MCPH, Augmented Multicast,
//	                   Reduced Broadcast, Augmented Sources)
//	internal/tree      multicast trees and the exact optimum
//	                   (tree-packing LP by column generation)
//	internal/sched     periodic one-port timetables (König colouring)
//	internal/sim       discrete-event one-port simulator
//	internal/tiers     Tiers-like random topology generator
//	internal/setcover  MINIMUM-SET-COVER and the Theorem 1 reduction
//	internal/prefix    pipelined parallel prefix and the Theorem 5
//	                   reduction
//	internal/exp       the Figure 11 experiment harness
//
// See README.md for a tour, DESIGN.md for the architecture and the
// paper-to-code mapping, and EXPERIMENTS.md for reproduced results.
// The benchmarks in bench_test.go regenerate every figure and table of
// the paper's evaluation.
package repro
