// Package repro reproduces "Complexity results and heuristics for
// pipelined multicast operations on heterogeneous platforms" (Beaumont,
// Legrand, Marchal, Robert — INRIA RR-5123 / ICPP 2004): steady-state
// throughput optimisation for a series of multicasts on an
// edge-weighted platform digraph under the bidirectional one-port
// model.
//
// This root package is a thin façade over the implementation packages:
//
//	internal/graph     platform model (digraph, activity masks, paths)
//	internal/lp        sparse revised simplex (built from scratch):
//	                   reusable Workspaces, warm starts from a prior
//	                   basis (dual-simplex cleanup after row addition,
//	                   primal pricing after column addition)
//	internal/flow      max-flow / min-cut / flow decomposition
//	internal/steady    the paper's LP bounds (Multicast-UB/LB,
//	                   Broadcast-EB, MulticastMultiSource-UB) plus the
//	                   Evaluator: cached, warm-started, incremental
//	                   bound evaluation for the heuristics and sweeps
//	internal/heur      the four heuristics (MCPH, Augmented Multicast,
//	                   Reduced Broadcast, Augmented Sources)
//	internal/tree      multicast trees and the exact optimum
//	                   (tree-packing LP by column generation)
//	internal/sched     periodic one-port timetables (König colouring)
//	internal/sim       discrete-event one-port simulator
//	internal/tiers     Tiers-like random topology generator
//	internal/setcover  MINIMUM-SET-COVER and the Theorem 1 reduction
//	internal/prefix    pipelined parallel prefix and the Theorem 5
//	                   reduction
//	internal/exp       the Figure 11 experiment harness: a concurrent
//	                   sweep engine (task generator, worker pool,
//	                   order-independent aggregator) with deterministic
//	                   per-task seeding, so a sweep's cells are
//	                   bit-identical for any worker count
//	internal/serve     the mcastd planning daemon: platform registry,
//	                   LRU plan cache, singleflight coalescing and a
//	                   sharded evaluator pool behind an HTTP/JSON API,
//	                   with responses bit-identical to serial library
//	                   calls
//	internal/testutil  tiny shared test helpers (Near)
//
// The sweep engine is surfaced as RunSweep (aggregated cells),
// RunSweepTasks (structured per-task results with errors carried as
// values), and EncodeSweep/DecodeSweep (JSON persistence of finished
// sweeps). SweepConfig.Workers sets the pool size; zero means
// runtime.GOMAXPROCS(0). Each task runs on its own Evaluator
// (NewEvaluator / HeuristicsWith), so the baselines and heuristics of
// one grid cell share cached bounds, pooled cuts and one LP
// workspace; AggregateSweepStats totals the solver statistics the
// -solvestats flags of cmd/experiments and cmd/figures report.
//
// The serving layer is surfaced as NewPlanServer / Serve (cmd/mcastd
// adds flags and graceful shutdown); ServeConfig.Shards sets the
// evaluator pool size, zero meaning runtime.GOMAXPROCS(0).
//
// See README.md for a tour. The benchmarks in bench_test.go regenerate
// every figure and table of the paper's evaluation; the Figure 11
// benchmarks come in parallel and Serial variants to measure the
// worker-pool speedup, and BenchmarkServePlan1Shard/...MaxShards
// measure the serving layer's shard scaling.
package repro
